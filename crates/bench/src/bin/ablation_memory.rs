//! Ablation: memory-governed storage in CP-ALS.
//!
//! ```text
//! cargo run --release -p cstf-bench --bin ablation_memory -- \
//!     [--scale 4000] [--seed 0] [--nodes 8] [--iters 2] [--tiny]
//! ```
//!
//! Runs the QCOO pipeline under a sweep of block-manager budgets —
//! unbounded, then {1.0, 0.5, 0.25}× the unbounded run's working set
//! (its [`peak_memory_bytes`](cstf_dataflow::BlockManager::peak_memory_bytes)
//! high-water mark) — with the tensor and queue RDDs persisted
//! `MemoryAndDisk`. Reports evicted bytes, spilled bytes, lineage
//! recomputes and modeled seconds per budget. Factors must stay
//! bit-identical to the unbounded reference at every fraction; the run
//! aborts otherwise.
//!
//! `--tiny` replaces the paper datasets with one small synthetic tensor
//! (the CI smoke configuration). Results land in
//! `results/BENCH_memory.json`.

use cstf_bench::*;
use cstf_core::{CpAls, CpResult, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::datasets::THIRD_ORDER;
use cstf_tensor::random::RandomTensor;
use cstf_tensor::CooTensor;

const FRACTIONS: [Option<f64>; 4] = [None, Some(1.0), Some(0.5), Some(0.25)];

fn run_budget(
    tensor: &CooTensor,
    budget: Option<u64>,
    nodes: usize,
    iters: usize,
    seed: u64,
) -> (Cluster, CpResult) {
    let mut config = ClusterConfig::auto().nodes(nodes);
    if let Some(b) = budget {
        config = config.memory_budget(b);
    }
    let cluster = Cluster::new(config);
    let result = CpAls::new(PAPER_RANK)
        .strategy(Strategy::Qcoo)
        .tensor_storage(StorageLevel::MemoryAndDisk)
        .max_iterations(iters)
        .skip_fit()
        .seed(seed)
        .run(&cluster, tensor)
        .expect("CP-ALS run failed");
    (cluster, result)
}

fn assert_bit_identical(a: &CpResult, b: &CpResult, what: &str) {
    for (fa, fb) in a.kruskal.factors.iter().zip(b.kruskal.factors.iter()) {
        for (x, y) in fa.data().iter().zip(fb.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: factors diverged");
        }
    }
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.parse("scale", 4000.0);
    let seed: u64 = args.parse("seed", 0);
    let nodes: usize = args.parse("nodes", 8);
    let iters: usize = args.parse("iters", DEFAULT_ITERATIONS);
    let tiny = args.flag("tiny");

    let datasets: Vec<(String, CooTensor)> = if tiny {
        vec![(
            "tiny_synth".to_string(),
            RandomTensor::new(vec![30, 24, 18])
                .nnz(800)
                .seed(seed)
                .build(),
        )]
    } else {
        THIRD_ORDER
            .iter()
            .map(|spec| (spec.name.to_string(), spec.generate(scale, seed)))
            .collect()
    };

    let mut json_datasets = Vec::new();
    for (name, tensor) in &datasets {
        println!(
            "\n=== Memory ablation: {} (shape {:?}, nnz {}, {} nodes, {} iters) ===",
            name,
            tensor.shape(),
            tensor.nnz(),
            nodes,
            iters
        );
        let model = spark_model(scale);

        // Unbounded reference: fixes the bit-identity baseline and the
        // working-set size the budget fractions are cut from.
        let (ref_cluster, reference) = run_budget(tensor, None, nodes, iters, seed);
        let working_set = ref_cluster.block_manager().peak_memory_bytes();
        assert!(working_set > 0, "reference run cached nothing");
        println!("working set (peak resident bytes): {working_set}");

        let mut rows = Vec::new();
        let mut json_budgets = Vec::new();
        for fraction in FRACTIONS {
            let budget = fraction.map(|f| (working_set as f64 * f).ceil() as u64);
            let (cluster, result) = run_budget(tensor, budget, nodes, iters, seed);
            let label = match fraction {
                None => "unbounded".to_string(),
                Some(f) => format!("{f:.2}x"),
            };
            assert_bit_identical(&reference, &result, &format!("{name}/{label}"));

            let bm = cluster.block_manager();
            let metrics = cluster.metrics().snapshot();
            let secs = model.job_time(&metrics);
            rows.push(vec![
                label,
                budget.map_or("-".to_string(), |b| b.to_string()),
                bm.evicted_bytes().to_string(),
                bm.spilled_bytes().to_string(),
                bm.recompute_count().to_string(),
                format!("{secs:.2} s"),
            ]);
            json_budgets.push(format!(
                concat!(
                    "      {{\"fraction\": {}, \"budget_bytes\": {}, ",
                    "\"evicted_bytes\": {}, \"spilled_bytes\": {}, ",
                    "\"spill_read_bytes\": {}, \"recompute_count\": {}, ",
                    "\"sim_secs\": {:.6}, \"bit_identical\": true}}"
                ),
                fraction.map_or("null".to_string(), |f| format!("{f}")),
                budget.map_or("null".to_string(), |b| b.to_string()),
                bm.evicted_bytes(),
                bm.spilled_bytes(),
                bm.spill_read_bytes(),
                bm.recompute_count(),
                secs
            ));
        }
        print_table(
            &[
                "budget",
                "budget bytes",
                "evicted bytes",
                "spilled bytes",
                "recomputes",
                "sim time",
            ],
            &rows,
        );
        json_datasets.push(format!(
            "    {{\"dataset\": \"{}\", \"nnz\": {}, \"working_set_bytes\": {}, \"budgets\": [\n{}\n    ]}}",
            name,
            tensor.nnz(),
            working_set,
            json_budgets.join(",\n")
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"ablation_memory\",\n",
            "  \"strategy\": \"QCOO\",\n  \"storage\": \"MemoryAndDisk\",\n",
            "  \"rank\": {},\n  \"nodes\": {},\n",
            "  \"iterations\": {},\n  \"seed\": {},\n  \"tiny\": {},\n",
            "  \"datasets\": [\n{}\n  ]\n}}\n"
        ),
        PAPER_RANK,
        nodes,
        iters,
        seed,
        tiny,
        json_datasets.join(",\n")
    );
    let path = results_dir().join("BENCH_memory.json");
    std::fs::write(&path, json).expect("write JSON report");
    println!("\n[wrote {}]", path.display());
}
