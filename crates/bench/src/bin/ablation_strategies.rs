//! Ablation: shuffle-join CSTF (COO/QCOO) vs the broadcast-join extension.
//!
//! ```text
//! cargo run --release -p cstf-bench --bin ablation_strategies -- \
//!     [--scale 4000] [--nodes 8] [--iters 2] [--seed 0]
//! ```
//!
//! The paper fetches factor rows with shuffle joins. When factor matrices
//! fit in executor memory, broadcasting them removes every join: one
//! shuffle per MTTKRP (the final reduce) at the cost of
//! `Σ Iₘ·R × nodes` of broadcast traffic per MTTKRP. This experiment
//! compares all three strategies' per-iteration bytes and modeled time,
//! quantifying when the extension wins.

use cstf_bench::*;
use cstf_core::Strategy;
use cstf_tensor::datasets::THIRD_ORDER;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.parse("scale", 4000.0);
    let nodes: usize = args.parse("nodes", 8);
    let iters: usize = args.parse("iters", DEFAULT_ITERATIONS);
    let seed: u64 = args.parse("seed", 0);
    let spark = spark_model(scale);

    for spec in THIRD_ORDER {
        let tensor = spec.generate(scale, seed);
        println!(
            "\n=== Strategy ablation: {} (nnz {}), {} nodes ===",
            spec.name,
            tensor.nnz(),
            nodes
        );
        let mut rows = Vec::new();
        for strategy in [
            Strategy::Coo,
            Strategy::Qcoo,
            Strategy::CooBroadcast,
            Strategy::DfactoSpmv,
        ] {
            let (m, _) = run_cstf(&tensor, strategy, nodes, iters, seed);
            let shuffle_bytes: u64 = m
                .shuffle_bytes_by_scope()
                .into_iter()
                .filter(|(s, _, _)| s.starts_with("MTTKRP"))
                .map(|(_, r, l)| r + l)
                .sum::<u64>()
                / iters as u64;
            let broadcast = m.total_broadcast_bytes() / iters as u64;
            let secs = per_iteration_secs_amortized(&spark, &m, iters);
            rows.push(vec![
                strategy.to_string(),
                format!(
                    "{}",
                    m.significant_shuffle_count(tensor.nnz() as u64 / 2) / iters
                ),
                format!("{:.2} MB", shuffle_bytes as f64 / 1e6),
                format!("{:.2} MB", broadcast as f64 / 1e6),
                format!("{secs:.1} s"),
            ]);
        }
        print_table(
            &[
                "strategy",
                "tensor shuffles/iter",
                "shuffle bytes/iter",
                "broadcast bytes/iter",
                "modeled time/iter",
            ],
            &rows,
        );
        write_csv(
            &format!("ablation_strategies_{}", spec.name),
            &[
                "strategy",
                "shuffles",
                "shuffle_bytes",
                "broadcast_bytes",
                "secs",
            ],
            &rows,
        );
    }
}
