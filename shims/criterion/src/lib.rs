//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Mirrors the subset of the API used by `crates/bench`: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros. Instead of
//! statistical sampling it runs each benchmark a fixed small number of
//! iterations and prints the mean wall-clock time — enough to smoke-run
//! `cargo bench` without the real crate.

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::Instant;

/// Iterations per benchmark (upstream criterion samples adaptively).
const ITERS: u32 = 10;

/// Iterations per benchmark: [`ITERS`], or 1 when `CSTF_BENCH_QUICK` is
/// set (the CI smoke configuration — one warm-up plus one timed run).
fn iters() -> u32 {
    if std::env::var_os("CSTF_BENCH_QUICK").is_some() {
        1
    } else {
        ITERS
    }
}

/// Mean wall-clock milliseconds per benchmark id, recorded by every
/// [`Bencher`] report in this process. Drained by [`take_measurements`].
static MEASUREMENTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Drains the `(benchmark id, mean ms/iter)` pairs recorded so far, in
/// run order. Lets harness binaries drive benchmarks through the normal
/// [`Criterion`] API and harvest the timings programmatically.
pub fn take_measurements() -> Vec<(String, f64)> {
    std::mem::take(&mut MEASUREMENTS.lock().unwrap())
}

/// Top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { _private: () }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    _private: (),
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the shim always runs a fixed number
    /// of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { nanos: 0, iters: 0 };
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { nanos: 0, iters: 0 };
        f(&mut b, input);
        b.report(&id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier, as upstream.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value, as upstream.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing handle: benchmarks call [`Bencher::iter`] with the code under
/// measurement.
#[derive(Debug)]
pub struct Bencher {
    nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up, then the timed runs.
        let n = iters();
        hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..n {
            hint::black_box(routine());
        }
        self.nanos += start.elapsed().as_nanos();
        self.iters += n;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("  {id}: (no measurement)");
        } else {
            let mean = self.nanos as f64 / self.iters as f64 / 1.0e6;
            println!("  {id}: {mean:.3} ms/iter ({} iters)", self.iters);
            MEASUREMENTS.lock().unwrap().push((id.to_string(), mean));
        }
    }
}

/// Opaque-to-the-optimizer identity, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declares a benchmark group: a function that runs each listed
/// benchmark function against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.sample_size(10).bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        group.bench_with_input(BenchmarkId::new("g", 3), &3u32, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        assert_eq!(calls, iters() + 1);
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
        // Both runs were recorded with their ids, in order.
        let measured = take_measurements();
        let ids: Vec<&str> = measured.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["f", "g/3"]);
        assert!(measured.iter().all(|&(_, ms)| ms >= 0.0));
        assert!(take_measurements().is_empty(), "drain must consume");
    }
}
