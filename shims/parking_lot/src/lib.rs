//! Std-backed shim for `parking_lot`: a non-poisoning `Mutex`.
//!
//! Built on `std::sync::Mutex`; lock poisoning is swallowed (parking_lot
//! has no poisoning), which matches how the workspace uses the API.

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
