//! No-op `Serialize`/`Deserialize` derives for the local serde shim.
//!
//! The workspace only ever *annotates* types with these derives; nothing
//! serializes at runtime, so the macros emit no code. The marker traits in
//! the `serde` shim are blanket-implemented instead.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and generates nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and generates nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
