//! Local shim for the slice of `rand` 0.8 this workspace uses.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and the `Rng`
//! extension methods `gen`, `gen_range` and `gen_bool`. The generator is
//! SplitMix64 — deterministic and statistically fine for tests and
//! synthetic data, but **not** bit-compatible with upstream rand's
//! ChaCha-based `StdRng` stream.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension methods (rand's `Rng` trait).
pub trait Rng: RngCore {
    /// Uniform value over `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64; see crate docs for the
    /// compatibility caveat).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x5D58_8B65_6C07_8965,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 6, "all values of a small range appear");
        for _ in 0..300 {
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
        }
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
