//! Local shim for serde: marker traits plus no-op derives.
//!
//! The workspace derives `Serialize` on metrics/report types so they stay
//! ready for real serialization, but never calls serde at runtime. The
//! traits here are blanket-implemented markers and the derive macros
//! (re-exported from the `serde_derive` shim) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Minimal `serde::de` module so `serde::de::DeserializeOwned` bounds
/// resolve if ever written.
pub mod de {
    /// Marker standing in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
