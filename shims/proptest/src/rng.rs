//! Deterministic test RNG (SplitMix64) seeding each proptest case.

/// Deterministic RNG handed to strategies while sampling one case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for `(test name, case index)`. The same pair always
    /// yields the same stream, so failures are reproducible.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
