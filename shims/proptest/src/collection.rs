//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Size specification accepted by [`vec`]: an exact length or a length
/// range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 1 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `Vec` strategy with the given element strategy and size spec
/// (upstream `prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::deterministic("collection", 0);
        let s = vec(any::<u32>(), 0..5);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 5);
            lens.insert(v.len());
        }
        assert!(lens.len() >= 4, "length range explored");
        assert_eq!(vec(any::<u8>(), 7).sample(&mut rng).len(), 7);
        assert_eq!(vec(any::<u8>(), 2..=2).sample(&mut rng).len(), 2);
    }
}
