//! The `Strategy` trait, primitive strategies and combinators.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest, sampling takes `&self` and there is no value
/// tree / shrinking; a strategy is just a deterministic function of the
/// RNG stream.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn ranges_tuples_and_combinators() {
        let mut rng = TestRng::deterministic("strategy", 0);
        for _ in 0..200 {
            let v = (1u32..5).sample(&mut rng);
            assert!((1..5).contains(&v));
            let w = (3usize..=3).sample(&mut rng);
            assert_eq!(w, 3);
            let (a, b) = ((0u8..4), (10i64..20)).sample(&mut rng);
            assert!(a < 4 && (10..20).contains(&b));
            let f = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
        let doubled = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.sample(&mut rng) % 2, 0);
        }
        let nested = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..9, n..=n));
        for _ in 0..50 {
            let v = nested.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        assert_eq!(Just(41u8).sample(&mut rng), 41);
    }
}
