//! `any::<T>()`: whole-domain strategies for primitives.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite floats spanning several magnitudes (no NaN/inf: the
    /// workspace's numeric properties assume finite inputs).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mag = [0.0, 1.0, 1e3, 1e-3, 1e6][rng.below(5) as usize];
        (rng.unit_f64() * 2.0 - 1.0) * (1.0 + mag)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
