//! Runner configuration.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}
