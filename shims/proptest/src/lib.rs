//! Local shim for the slice of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro form
//! `fn name(arg in strategy, ...) { body }` with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! macros, range and tuple strategies, `any::<T>()`, `Just`,
//! `prop::collection::vec`, and the `prop_map`/`prop_flat_map`
//! combinators.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its case index (the inputs are reproducible from the test name and that
//! index, since sampling is fully deterministic).

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(...)` works as upstream.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs a block of property tests. See the crate docs for the supported
/// grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest {} failed at case #{} of {}: {}",
                            stringify!($name), __case, __config.cases, __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property-test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Skips the current case (counts as a pass) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
