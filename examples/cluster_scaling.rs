//! Cluster-scaling study: simulated CP-ALS runtime at 4–32 nodes.
//!
//! ```text
//! cargo run --release -p cstf-examples --bin cluster_scaling
//! ```
//!
//! Runs one CP-ALS iteration of CSTF-COO and CSTF-QCOO on a synt3d-style
//! tensor for each simulated cluster size and converts the recorded stage
//! metrics into simulated seconds with the documented time model — a
//! miniature of the paper's Figure 2 experiment (see
//! `cargo run -p cstf-bench --bin fig2_runtime` for the full version with
//! the BIGtensor baseline).

use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::datasets::SYNT3D;

fn main() {
    let scale = 20_000.0;
    let tensor = SYNT3D.generate(scale, 21);
    println!(
        "synt3d @ 1/{:.0}: shape {:?}, nnz {}",
        scale,
        tensor.shape(),
        tensor.nnz()
    );
    // Each executed record stands for `scale` full-size records; fixed
    // per-stage overheads stay as-is (see cstf_dataflow::sim docs).
    let model = TimeModel::spark().with_work_scale(scale);

    println!(
        "\n{:>6} {:>14} {:>14} {:>10}",
        "nodes", "COO sim(s)", "QCOO sim(s)", "QCOO/COO"
    );
    for nodes in [4usize, 8, 16, 32] {
        let mut times = Vec::new();
        for strategy in [Strategy::Coo, Strategy::Qcoo] {
            let cluster = Cluster::new(ClusterConfig::auto().nodes(nodes));
            let _ = CpAls::new(2)
                .strategy(strategy)
                .max_iterations(2)
                .skip_fit()
                .seed(9)
                .run(&cluster, &tensor)
                .expect("decomposition failed");
            let metrics = cluster.metrics().snapshot();
            // Average simulated time per iteration (2 ran).
            times.push(model.job_time(&metrics) / 2.0);
        }
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>10.2}",
            nodes,
            times[0],
            times[1],
            times[1] / times[0]
        );
    }
    println!("\n(decreasing then flattening, as in Figure 2 of the paper)");
}
