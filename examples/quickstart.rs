//! Quickstart: decompose a random sparse tensor with CSTF-QCOO.
//!
//! ```text
//! cargo run --release -p cstf-examples --bin quickstart
//! ```
//!
//! Builds a simulated 4-node cluster, generates a small third-order sparse
//! tensor with hidden rank-3 structure, runs ten CP-ALS iterations with the
//! queued-COO pipeline, and prints the fit trajectory plus the shuffle
//! traffic the run produced.

use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::random::sparse_low_rank_tensor;

fn main() {
    // A "cluster": 4 simulated nodes, executing on local threads.
    let cluster = Cluster::new(ClusterConfig::auto().nodes(4));

    // A sparse tensor with exact hidden rank-3 structure: each component
    // touches ~19 indices per mode, so a rank-3 decomposition can explain
    // the data perfectly.
    let (tensor, _truth) = sparse_low_rank_tensor(&[200, 150, 120], 3, 19, 42);
    println!(
        "tensor: {:?}, nnz = {}, density = {:.2e}",
        tensor.shape(),
        tensor.nnz(),
        tensor.density()
    );

    // Rank-3 CP decomposition with the QCOO strategy.
    let result = CpAls::new(3)
        .strategy(Strategy::Qcoo)
        .max_iterations(10)
        .tolerance(1e-6)
        .seed(7)
        .run(&cluster, &tensor)
        .expect("decomposition failed");

    println!("\nfit per iteration:");
    for (i, fit) in result.stats.fits.iter().enumerate() {
        println!("  iter {:>2}: fit = {:.6}", i + 1, fit);
    }
    println!(
        "\nconverged after {} iterations, final fit {:.6}",
        result.stats.iterations, result.stats.final_fit
    );
    println!(
        "decomposition holds {} parameters vs {} stored nonzeros",
        result.kruskal.parameter_count(),
        tensor.nnz()
    );
    println!("lambda = {:?}", result.kruskal.weights);

    // What the engine moved to get there.
    let metrics = cluster.metrics().snapshot();
    println!(
        "\nshuffles: {}   remote bytes: {:.1} MB   local bytes: {:.1} MB",
        metrics.shuffle_count(),
        metrics.total_remote_bytes() as f64 / 1e6,
        metrics.total_local_bytes() as f64 / 1e6,
    );
}
