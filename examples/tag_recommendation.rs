//! Tag recommendation on a delicious-style (user, item, tag) tensor.
//!
//! ```text
//! cargo run --release -p cstf-examples --bin tag_recommendation
//! ```
//!
//! The paper's `delicious3d` dataset is a user-item-tag tensor crawled from
//! a social tagging system. This example synthesizes one with planted
//! "communities" (groups of users who tag related items with related
//! tags), factorizes it, and uses the factor matrices the way a tagging
//! service would: score candidate tags for a (user, item) pair.

use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::CooTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USERS: u32 = 300;
const ITEMS: u32 = 400;
const TAGS: u32 = 120;
const COMMUNITIES: usize = 4;

/// Builds a tagging tensor with `COMMUNITIES` planted communities: users,
/// items and tags are each assigned a community; intra-community taggings
/// dominate, plus background noise.
fn synth_tagging_tensor(seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(vec![USERS, ITEMS, TAGS]);
    let community_of = |id: u32, extent: u32| (id as usize * COMMUNITIES) / extent as usize;

    // Intra-community taggings.
    for _ in 0..12_000 {
        let c = rng.gen_range(0..COMMUNITIES) as u32;
        let span_u = USERS / COMMUNITIES as u32;
        let span_i = ITEMS / COMMUNITIES as u32;
        let span_t = TAGS / COMMUNITIES as u32;
        let u = c * span_u + rng.gen_range(0..span_u);
        let i = c * span_i + rng.gen_range(0..span_i);
        let g = c * span_t + rng.gen_range(0..span_t);
        t.push(&[u, i, g], 1.0).unwrap();
    }
    // Background noise taggings.
    for _ in 0..2_000 {
        let u = rng.gen_range(0..USERS);
        let i = rng.gen_range(0..ITEMS);
        let g = rng.gen_range(0..TAGS);
        t.push(&[u, i, g], 1.0).unwrap();
    }
    t.sum_duplicates();
    let _ = community_of; // (kept for clarity of the construction)
    t
}

fn main() {
    let cluster = Cluster::new(ClusterConfig::auto().nodes(8));
    let tensor = synth_tagging_tensor(99);
    println!(
        "tagging tensor: {} users × {} items × {} tags, {} taggings",
        USERS,
        ITEMS,
        TAGS,
        tensor.nnz()
    );

    let result = CpAls::new(COMMUNITIES)
        .strategy(Strategy::Qcoo)
        .max_iterations(12)
        .tolerance(1e-5)
        .seed(3)
        .run(&cluster, &tensor)
        .expect("decomposition failed");
    println!(
        "rank-{} decomposition: fit {:.4} after {} iterations\n",
        COMMUNITIES, result.stats.final_fit, result.stats.iterations
    );

    let [user_f, item_f, tag_f] = &result.kruskal.factors[..] else {
        unreachable!("third-order tensor has three factors");
    };

    // Recommend tags for a (user, item) pair: score(tag) =
    // Σ_r λ_r · U(u,r) · I(i,r) · T(tag,r).
    let (user, item) = (10u32, 20u32);
    let mut scores: Vec<(u32, f64)> = (0..TAGS)
        .map(|g| {
            let s: f64 = (0..COMMUNITIES)
                .map(|r| {
                    result.kruskal.weights[r]
                        * user_f.get(user as usize, r)
                        * item_f.get(item as usize, r)
                        * tag_f.get(g as usize, r)
                })
                .sum();
            (g, s)
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("top-5 recommended tags for user {user}, item {item}:");
    for (g, s) in scores.iter().take(5) {
        println!("  tag {:>3}  score {:.4}", g, s);
    }
    // Both user 10 and item 20 belong to community 0 (ids below the first
    // quartile), so the recommended tags should too (ids < TAGS/4 = 30).
    let community_hits = scores
        .iter()
        .take(5)
        .filter(|(g, _)| *g < TAGS / COMMUNITIES as u32)
        .count();
    println!("  ({community_hits}/5 from the user's own community)");

    // The dominant latent component per community of users.
    println!("\nstrongest latent component per user block:");
    for c in 0..COMMUNITIES {
        let u0 = (c as u32 * USERS / COMMUNITIES as u32) as usize;
        let row = user_f.row(u0 + 2);
        let (best, _) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!("  user block {c}: component {best}");
    }
}
