//! Incremental decomposition of an evolving tensor via warm starts.
//!
//! ```text
//! cargo run --release -p cstf-examples --bin streaming_updates
//! ```
//!
//! Tagging data grows over time: each window appends new (user, item,
//! tag) observations. Re-decomposing from scratch wastes the previous
//! window's work; `CpAls::warm_start` resumes from the last factors, so
//! a handful of refresh iterations reaches the fit a cold start needs
//! many iterations for — the online-tensor-methods idea the paper's
//! intro cites as a motivating application area.

use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::random::sparse_low_rank_tensor;
use cstf_tensor::CooTensor;

const WINDOWS: usize = 4;
const TOL: f64 = 1e-4;

fn main() {
    // Ground truth: a fixed sparse rank-3 structure, revealed gradually.
    let (full, _) = sparse_low_rank_tensor(&[150, 120, 90], 3, 16, 23);
    println!(
        "evolving tensor: shape {:?}, {} total observations arriving in {WINDOWS} windows\n",
        full.shape(),
        full.nnz()
    );

    let mut warm: Option<cstf_tensor::KruskalTensor> = None;
    let mut total_warm_iters = 0usize;
    let mut total_cold_iters = 0usize;

    for w in 1..=WINDOWS {
        // Observations seen so far: the first w/WINDOWS of the stream.
        let visible = full.nnz() * w / WINDOWS;
        let mut seen = CooTensor::new(full.shape().to_vec());
        for (z, (coord, v)) in full.iter().enumerate() {
            if z < visible {
                seen.push(coord, v).unwrap();
            }
        }

        let cold = CpAls::new(3)
            .strategy(Strategy::Qcoo)
            .max_iterations(40)
            .tolerance(TOL)
            .seed(1)
            .run(&Cluster::new(ClusterConfig::auto().nodes(4)), &seen)
            .expect("cold run failed");

        let mut warm_builder = CpAls::new(3)
            .strategy(Strategy::Qcoo)
            .max_iterations(40)
            .tolerance(TOL)
            .seed(1);
        if let Some(init) = warm.take() {
            warm_builder = warm_builder.warm_start(init);
        }
        let incremental = warm_builder
            .run(&Cluster::new(ClusterConfig::auto().nodes(4)), &seen)
            .expect("warm run failed");

        println!(
            "window {w}: {:>6} obs | cold: {:>2} iters → fit {:.4} | warm: {:>2} iters → fit {:.4}",
            seen.nnz(),
            cold.stats.iterations,
            cold.stats.final_fit,
            incremental.stats.iterations,
            incremental.stats.final_fit,
        );
        total_cold_iters += cold.stats.iterations;
        total_warm_iters += incremental.stats.iterations;
        warm = Some(incremental.kruskal);
    }

    println!(
        "\ntotal ALS iterations across windows: cold restarts {total_cold_iters}, \
         warm starts {total_warm_iters} ({:.0}% saved)",
        100.0 * (1.0 - total_warm_iters as f64 / total_cold_iters as f64)
    );
}
