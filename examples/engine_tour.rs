//! A tour of the Spark-like engine underneath CSTF.
//!
//! ```text
//! cargo run --release -p cstf-examples --bin engine_tour
//! ```
//!
//! CSTF's value proposition is built on RDD semantics: lazy lineage,
//! shuffles with measurable traffic, caching, broadcast, fault tolerance.
//! This example exercises each of them directly on a classic wordcount-ish
//! workload, prints the engine's stage report, then kills a node and shows
//! lineage recovery. A closing section tours the four MTTKRP strategies
//! through the planner's uniform API — the same `CpAls` builder drives
//! COO, QCOO, broadcast and DFacTo-SpMV with one flag flipped.

use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::random::RandomTensor;

fn main() {
    // 8 simulated nodes on local threads.
    let cluster = Cluster::new(ClusterConfig::auto().nodes(8));

    // "Log lines": level, subsystem, latency.
    let levels = ["INFO", "WARN", "ERROR"];
    let subsystems = ["auth", "db", "cache", "api"];
    let lines: Vec<(String, String, u64)> = (0..50_000u64)
        .map(|i| {
            (
                levels[(i % 17 % 3) as usize].to_string(),
                subsystems[(i % 23 % 4) as usize].to_string(),
                i % 250,
            )
        })
        .collect();
    println!("analyzing {} log lines on 8 simulated nodes", lines.len());

    // Lazy pipeline: nothing executes until an action.
    let logs = cluster
        .parallelize(lines, 32)
        .persist(StorageLevel::MemoryRaw);
    let errors = logs.filter(|(level, _, _)| level == "ERROR");

    // reduceByKey → per-subsystem error counts (one shuffle).
    let mut error_counts = errors
        .map(|(_, subsystem, _)| (subsystem, 1u64))
        .reduce_by_key_map_side(|a, b| a + b)
        .collect();
    error_counts.sort();
    println!("\nerrors per subsystem: {error_counts:?}");

    // Broadcast join: severity weights shipped to every node, no shuffle.
    let weights = cluster.broadcast(
        [("INFO", 1u64), ("WARN", 10), ("ERROR", 100)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<std::collections::BTreeMap<_, _>>(),
    );
    let weighted: u64 = logs
        .map(move |(level, _, latency)| weights[&level] * latency)
        .reduce(|a, b| a + b)
        .unwrap_or(0);
    println!("severity-weighted latency total: {weighted}");

    // Global sort by latency (range partitioner under the hood).
    let slowest = logs
        .map(|(level, subsystem, latency)| (u64::MAX - latency, (level, subsystem)))
        .sort_by_key(16)
        .take(3);
    println!("\nslowest requests:");
    for (inv, (level, subsystem)) in slowest {
        println!("  {:>4} ms  {level:<5} {subsystem}", u64::MAX - inv);
    }

    // What did all of that cost? The engine kept score.
    println!("\n--- engine stage report ---");
    print!("{}", cluster.metrics().snapshot().render_report());

    // Fault tolerance: kill a node, lose its cache + shuffle outputs,
    // recompute transparently from lineage.
    let (lost_blocks, lost_outputs) = cluster.simulate_node_failure(3);
    println!(
        "\nnode 3 failed: lost {lost_blocks} cached partitions and {lost_outputs} shuffle outputs"
    );
    let recount = errors.count();
    println!("error count after recovery: {recount} (recomputed from lineage)");

    // Finale: every MTTKRP strategy through one uniform driver loop. The
    // planner builds whatever each pipeline needs (pre-keyed tensor
    // copies, carried queue state, broadcast factors); `CpAls::run` never
    // branches on the strategy. Same seed → same initialization, so the
    // fits agree to floating-point tolerance while the shuffle structure
    // differs per strategy.
    println!("\n--- MTTKRP strategy tour (same tensor, same seed) ---");
    let tensor = RandomTensor::new(vec![40, 30, 25])
        .nnz(2_000)
        .seed(9)
        .build();
    for strategy in [
        Strategy::Coo,
        Strategy::Qcoo,
        Strategy::CooBroadcast,
        Strategy::DfactoSpmv,
    ] {
        let c = Cluster::new(ClusterConfig::auto().nodes(8));
        let result = CpAls::new(2)
            .strategy(strategy)
            .max_iterations(3)
            .seed(4)
            .run(&c, &tensor)
            .expect("decomposition");
        let m = c.metrics().snapshot();
        let caps = strategy.capabilities();
        println!(
            "  {:<13} fit {:.6}  shuffles {:>3} (+{} skipped)  caps: pre-partition={} broadcast={} carried-state={}",
            strategy.to_string(),
            result.stats.final_fit,
            m.shuffle_count(),
            m.skipped_shuffle_count(),
            caps.pre_partitioned_tensor,
            caps.broadcast_factors,
            caps.carried_state,
        );
    }
}
