//! Rating prediction with distributed tensor completion.
//!
//! ```text
//! cargo run --release -p cstf-examples --bin rating_prediction
//! ```
//!
//! A (user, item, week) ratings tensor is observed only where users
//! actually rated. Plain CP-ALS (the paper's algorithm) would treat every
//! unrated cell as a zero rating; the completion extension
//! (`CpCompletion`, DisTenC-style) fits only the observed entries and
//! predicts the held-out ones. We compare both against a global-mean
//! baseline on a test split.

use cstf_core::{CpAls, CpCompletion};
use cstf_dataflow::prelude::*;
use cstf_tensor::CooTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USERS: u32 = 150;
const ITEMS: u32 = 200;
const WEEKS: u32 = 26;
const RANK: usize = 4;

/// Synthesizes ratings from a hidden taste model: user and item latent
/// vectors plus a seasonal week profile, squashed into the 1–5 range.
fn synth_ratings(seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let user_taste: Vec<[f64; RANK]> = (0..USERS)
        .map(|_| std::array::from_fn(|_| rng.gen::<f64>()))
        .collect();
    let item_trait: Vec<[f64; RANK]> = (0..ITEMS)
        .map(|_| std::array::from_fn(|_| rng.gen::<f64>()))
        .collect();
    let week_mood: Vec<[f64; RANK]> = (0..WEEKS)
        .map(|w| {
            std::array::from_fn(|r| {
                0.75 + 0.25
                    * ((w as f64 / WEEKS as f64 + r as f64 / RANK as f64) * std::f64::consts::TAU)
                        .sin()
            })
        })
        .collect();

    let mut t = CooTensor::new(vec![USERS, ITEMS, WEEKS]);
    for _ in 0..30_000 {
        let (u, i, w) = (
            rng.gen_range(0..USERS),
            rng.gen_range(0..ITEMS),
            rng.gen_range(0..WEEKS),
        );
        let mut score: f64 = (0..RANK)
            .map(|r| {
                user_taste[u as usize][r] * item_trait[i as usize][r] * week_mood[w as usize][r]
            })
            .sum();
        score = 1.0 + 4.0 * (score / RANK as f64).clamp(0.0, 1.0);
        t.push(&[u, i, w], score).unwrap();
    }
    t.sum_duplicates();
    t
}

fn split(t: &CooTensor, every: usize) -> (CooTensor, CooTensor) {
    let mut train = CooTensor::new(t.shape().to_vec());
    let mut test = CooTensor::new(t.shape().to_vec());
    for (z, (coord, v)) in t.iter().enumerate() {
        if z % every == 0 {
            test.push(coord, v).unwrap();
        } else {
            train.push(coord, v).unwrap();
        }
    }
    (train, test)
}

fn main() {
    let ratings = synth_ratings(17);
    let (train, test) = split(&ratings, 10);
    println!(
        "ratings tensor: {USERS} users × {ITEMS} items × {WEEKS} weeks; \
         {} train / {} test observations ({:.2}% observed)",
        train.nnz(),
        test.nnz(),
        100.0 * ratings.density()
    );

    // Baseline: predict the global mean rating.
    let mean: f64 = train.values().iter().sum::<f64>() / train.nnz() as f64;
    let mean_rmse = (test
        .iter()
        .map(|(_, v)| (v - mean) * (v - mean))
        .sum::<f64>()
        / test.nnz() as f64)
        .sqrt();

    let cluster = Cluster::new(ClusterConfig::auto().nodes(8));
    let completion = CpCompletion::new(RANK)
        .max_iterations(15)
        .regularization(0.05)
        .tolerance(1e-5)
        .seed(3)
        .run(&cluster, &train)
        .expect("completion failed");
    let completion_rmse = completion.rmse_on(&test);

    // Plain CP-ALS (zeros treated as real) for contrast.
    let cp = CpAls::new(RANK)
        .max_iterations(15)
        .seed(3)
        .run(&Cluster::new(ClusterConfig::auto().nodes(8)), &train)
        .expect("cp failed");
    let cp_rmse = (test
        .iter()
        .map(|(c, v)| {
            let e = v - cp.kruskal.eval(c);
            e * e
        })
        .sum::<f64>()
        / test.nnz() as f64)
        .sqrt();

    println!("\nheld-out RMSE (ratings on a 1–5 scale):");
    println!("  global mean baseline : {mean_rmse:.3}");
    println!("  plain CP-ALS         : {cp_rmse:.3}   (treats unrated cells as 0)");
    println!(
        "  CP completion        : {completion_rmse:.3}   ({} sweeps, train RMSE {:.3})",
        completion.iterations, completion.final_rmse
    );

    // A few sample predictions.
    println!("\nsample predictions (user 3):");
    for item in [5u32, 50, 150] {
        let p = completion.predict(&[3, item, 10]).clamp(1.0, 5.0);
        println!("  item {item:>3}, week 10 → predicted rating {p:.2}");
    }
}
