//! CLI: decompose a FROSTT `.tns` tensor file and write the factors out.
//!
//! ```text
//! cargo run --release -p cstf-examples --bin decompose_file -- \
//!     <input.tns> [rank] [iterations] [coo|qcoo|broadcast|spmv]
//! ```
//!
//! Reads the tensor (1-based indices, one nonzero per line), runs CP-ALS
//! on a simulated 8-node cluster, prints convergence, and writes one
//! `factor_<mode>.txt` per mode (row-major, tab-separated) plus
//! `lambda.txt` next to the input. With no arguments, a demo tensor is
//! generated, written to a temp directory, and decomposed — so the
//! example is runnable out of the box.

use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::{io, random::sparse_low_rank_tensor};
use std::io::Write;
use std::path::{Path, PathBuf};

fn write_matrix(path: &Path, m: &cstf_tensor::DenseMatrix) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for row in m.rows_iter() {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.12e}")).collect();
        writeln!(f, "{}", line.join("\t"))?;
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Demo mode: no input file given.
    let input: PathBuf = match args.first() {
        Some(p) => PathBuf::from(p),
        None => {
            let dir = std::env::temp_dir().join("cstf_demo");
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let path = dir.join("demo.tns");
            let (tensor, _) = sparse_low_rank_tensor(&[120, 100, 80], 3, 14, 7);
            io::write_tns_file(&tensor, &path).expect("write demo tensor");
            println!(
                "(no input given — wrote a demo tensor to {})",
                path.display()
            );
            path
        }
    };
    let rank: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let iters: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(15);
    let strategy = match args.get(3) {
        Some(s) => s.parse::<Strategy>().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => Strategy::Qcoo,
    };

    let tensor = match io::read_tns_file(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {}: {e}", input.display());
            std::process::exit(1);
        }
    };
    println!(
        "loaded {}: order {}, shape {:?}, {} nonzeros, density {:.2e}",
        input.display(),
        tensor.order(),
        tensor.shape(),
        tensor.nnz(),
        tensor.density()
    );

    let cluster = Cluster::new(ClusterConfig::auto().nodes(8));
    let result = CpAls::new(rank)
        .strategy(strategy)
        .max_iterations(iters)
        .tolerance(1e-7)
        .seed(1)
        .run(&cluster, &tensor)
        .unwrap_or_else(|e| {
            eprintln!("decomposition failed: {e}");
            std::process::exit(1);
        });

    println!(
        "rank-{rank} {strategy} decomposition: {} iterations, final fit {:.6}",
        result.stats.iterations, result.stats.final_fit
    );

    let dir = input.parent().unwrap_or_else(|| Path::new("."));
    for (mode, factor) in result.kruskal.factors.iter().enumerate() {
        let path = dir.join(format!("factor_{mode}.txt"));
        write_matrix(&path, factor).expect("write factor");
        println!(
            "wrote {} ({}x{})",
            path.display(),
            factor.rows(),
            factor.cols()
        );
    }
    let lambda_path = dir.join("lambda.txt");
    let mut f = std::fs::File::create(&lambda_path).expect("create lambda file");
    for l in &result.kruskal.weights {
        writeln!(f, "{l:.12e}").expect("write lambda");
    }
    println!("wrote {}", lambda_path.display());
}
