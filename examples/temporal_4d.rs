//! 4th-order temporal analysis: COO vs QCOO communication on a
//! flickr-style (user, item, tag, day) tensor.
//!
//! ```text
//! cargo run --release -p cstf-examples --bin temporal_4d
//! ```
//!
//! BIGtensor cannot factorize 4th-order tensors at all (the paper uses
//! CSTF-COO as the 4th-order baseline, §6.3); this example runs both CSTF
//! pipelines on a scaled flickr stand-in and reports the per-strategy
//! shuffle traffic — the effect the paper quantifies as a 31% reduction
//! for flickr in Figure 4.

use cstf_core::cost::{iteration_communication, qcoo_savings, Algorithm};
use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::datasets::FLICKR;

fn main() {
    let scale = 50_000.0;
    let tensor = FLICKR.generate(scale, 11);
    println!(
        "flickr @ 1/{:.0}: shape {:?}, nnz {}, order {}",
        scale,
        tensor.shape(),
        tensor.nnz(),
        tensor.order()
    );

    let mut totals = Vec::new();
    for strategy in [Strategy::Coo, Strategy::Qcoo] {
        let cluster = Cluster::new(ClusterConfig::auto().nodes(8));
        let result = CpAls::new(2)
            .strategy(strategy)
            .max_iterations(3)
            .seed(5)
            .run(&cluster, &tensor)
            .expect("decomposition failed");
        let m = cluster.metrics().snapshot();
        println!(
            "\n{strategy}: fit {:.4}, {} shuffles, remote {:.2} MB, local {:.2} MB",
            result.stats.final_fit,
            m.shuffle_count(),
            m.total_remote_bytes() as f64 / 1e6,
            m.total_local_bytes() as f64 / 1e6,
        );
        println!("  per-mode remote traffic:");
        for (scope, remote, _local) in m.shuffle_bytes_by_scope() {
            println!("    {scope:<10} {:.2} MB", remote as f64 / 1e6);
        }
        totals.push(m.total_shuffle_bytes() as f64);
    }

    let measured_saving = 1.0 - totals[1] / totals[0];
    println!(
        "\nQCOO moved {:.1}% less shuffle data than COO \
         (paper's 4th-order analytic bound: {:.0}%, measured on flickr: 31%)",
        measured_saving * 100.0,
        qcoo_savings(4) * 100.0
    );
    let coo_model = iteration_communication(Algorithm::CstfCoo, 4, tensor.nnz() as u64, 2);
    let qcoo_model = iteration_communication(Algorithm::CstfQcoo, 4, tensor.nnz() as u64, 2);
    println!(
        "analytic per-iteration elements: COO {} vs QCOO {}",
        coo_model, qcoo_model
    );
}
