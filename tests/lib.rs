//! Cross-crate integration tests for the CSTF workspace.
//!
//! The actual tests live in `tests/` next to this file; this library only
//! hosts shared fixtures.

use cstf_dataflow::prelude::*;
use cstf_tensor::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small simulated cluster shared by the integration tests.
pub fn test_cluster(nodes: usize) -> Cluster {
    Cluster::new(ClusterConfig::local(4).nodes(nodes))
}

/// Seeded random factor matrices for a tensor shape.
pub fn random_factors(shape: &[u32], rank: usize, seed: u64) -> Vec<DenseMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    shape
        .iter()
        .map(|&s| DenseMatrix::random(s as usize, rank, &mut rng))
        .collect()
}
