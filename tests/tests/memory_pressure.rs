//! Memory-governed CP-ALS across crates: the acceptance criterion for the
//! budgeted block manager. With `memory_budget` pinned to 25% of the
//! unbounded run's working set, a 3rd-order decomposition must still
//! complete, must actually evict and spill (otherwise the budget proved
//! nothing), and must produce factors bit-identical to the unbounded
//! reference — on a quiet cluster and under seeded task-crash schedules.

use cstf_core::{CpAls, CpResult, Strategy};
use cstf_dataflow::prelude::*;
use cstf_integration_tests::test_cluster;
use cstf_tensor::random::sparse_low_rank_tensor;
use cstf_tensor::CooTensor;

fn tensor() -> CooTensor {
    sparse_low_rank_tensor(&[30, 25, 20], 2, 8, 74).0
}

fn decompose(c: &Cluster, t: &CooTensor, strategy: Strategy, level: StorageLevel) -> CpResult {
    CpAls::new(2)
        .strategy(strategy)
        .max_iterations(2)
        .seed(7)
        .tensor_storage(level)
        .run(c, t)
        .unwrap()
}

/// Runs the unbounded reference and returns `(result, working_set_bytes)`.
fn reference(t: &CooTensor, strategy: Strategy) -> (CpResult, u64) {
    let c = test_cluster(4);
    let out = decompose(&c, t, strategy, StorageLevel::MemoryRaw);
    let peak = c.block_manager().peak_memory_bytes();
    assert!(peak > 0, "{strategy}: reference run cached nothing");
    (out, peak)
}

fn budgeted_cluster(budget: u64) -> Cluster {
    Cluster::new(ClusterConfig::local(4).nodes(4).memory_budget(budget))
}

/// Seeded chaos on top of the budget: crashes on ~60% of first attempts.
fn budgeted_chaos_cluster(budget: u64, seed: u64) -> Cluster {
    Cluster::new(
        ClusterConfig::local(4)
            .nodes(4)
            .memory_budget(budget)
            .max_task_attempts(4)
            .faults(FaultConfig::crashes(seed, 0.6)),
    )
}

fn assert_bits_equal(a: &CpResult, b: &CpResult, what: &str) {
    let bits = |r: &CpResult| -> Vec<u64> {
        r.kruskal
            .weights
            .iter()
            .copied()
            .chain(
                r.kruskal
                    .factors
                    .iter()
                    .flat_map(|f| f.data().iter().copied()),
            )
            .map(f64::to_bits)
            .collect()
    };
    assert_eq!(
        bits(a),
        bits(b),
        "{what}: factors drifted under memory pressure"
    );
}

/// The headline acceptance test: COO and QCOO CP-ALS at a 25% budget
/// evict, spill, and still match the unbounded bits exactly.
#[test]
fn cp_als_bit_identical_at_quarter_budget() {
    let t = tensor();
    for strategy in [Strategy::Coo, Strategy::Qcoo] {
        let (expect, working_set) = reference(&t, strategy);
        let budget = working_set / 4;

        let c = budgeted_cluster(budget);
        let got = decompose(&c, &t, strategy, StorageLevel::MemoryAndDisk);
        assert_bits_equal(&got, &expect, &format!("{strategy} quiet"));

        let bm = c.block_manager();
        assert!(
            bm.memory_bytes() <= budget,
            "{strategy}: resident over budget"
        );
        assert!(
            bm.eviction_count() > 0,
            "{strategy}: budget never bit — evictions expected"
        );
        assert!(
            bm.spilled_bytes() > 0,
            "{strategy}: MemoryAndDisk never spilled"
        );

        let report = c.metrics().snapshot().render_report();
        assert!(report.contains("STORAGE"), "{strategy} report: {report}");
        assert!(report.contains("evicted"), "{strategy} report: {report}");
        assert!(report.contains("spilled"), "{strategy} report: {report}");
    }
}

/// Memory pressure composes with fault injection: evicted blocks, spilled
/// blocks, and crashed tasks all funnel through the same deterministic
/// recovery, so the bits still match the unbounded quiet reference.
#[test]
fn cp_als_bit_identical_at_quarter_budget_under_chaos() {
    let t = tensor();
    for strategy in [Strategy::Coo, Strategy::Qcoo] {
        let (expect, working_set) = reference(&t, strategy);
        for seed in [3, 17] {
            let c = budgeted_chaos_cluster(working_set / 4, seed);
            let got = decompose(&c, &t, strategy, StorageLevel::MemoryAndDisk);
            assert_bits_equal(&got, &expect, &format!("{strategy} chaos seed {seed}"));
            assert!(
                c.metrics().snapshot().total_task_failures() >= 1,
                "{strategy} seed {seed}: schedule injected no faults"
            );
            assert!(c.block_manager().eviction_count() > 0);
        }
    }
}

/// The evicted `MemoryRaw` path (recompute from lineage, no disk) also
/// reproduces the reference bits — spill is an optimisation, not a
/// correctness requirement.
#[test]
fn memory_raw_recompute_path_matches_reference() {
    let t = tensor();
    let (expect, working_set) = reference(&t, Strategy::Coo);
    let c = budgeted_cluster(working_set / 4);
    let got = decompose(&c, &t, Strategy::Coo, StorageLevel::MemoryRaw);
    assert_bits_equal(&got, &expect, "recompute path");
    let bm = c.block_manager();
    assert!(bm.eviction_count() > 0);
    assert_eq!(bm.spilled_bytes(), 0, "MemoryRaw must not touch disk");
    assert!(
        bm.recompute_count() > 0,
        "evictions must trigger lineage recompute"
    );
}

/// A budgeted run models strictly more simulated seconds than the
/// unbounded one: spill traffic is charged, not free.
#[test]
fn quarter_budget_run_models_slower_than_unbounded() {
    let t = tensor();
    let unbounded = {
        let c = test_cluster(4);
        let _ = decompose(&c, &t, Strategy::Qcoo, StorageLevel::MemoryAndDisk);
        (
            TimeModel::spark().job_time(&c.metrics().snapshot()),
            c.block_manager().peak_memory_bytes(),
        )
    };
    let c = budgeted_cluster(unbounded.1 / 4);
    let _ = decompose(&c, &t, Strategy::Qcoo, StorageLevel::MemoryAndDisk);
    let tight = TimeModel::spark().job_time(&c.metrics().snapshot());
    assert!(
        tight > unbounded.0,
        "budgeted run must model slower: {tight} vs {}",
        unbounded.0
    );
}
