//! Property-based cross-crate tests: the three distributed MTTKRP
//! implementations must agree with the sequential reference on arbitrary
//! sparse tensors.

use cstf_core::factors::tensor_to_rdd;
use cstf_core::mttkrp::{mttkrp_coo, MttkrpOptions};
use cstf_core::qcoo::QcooState;
use cstf_dataflow::prelude::*;
use cstf_integration_tests::{random_factors, test_cluster};
use cstf_tensor::mttkrp::mttkrp as mttkrp_seq;
use cstf_tensor::{CooTensor, DenseMatrix};
use proptest::prelude::*;

/// Strategy generating a small random sparse tensor of order 2–4.
fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (2usize..=4)
        .prop_flat_map(|order| {
            let shape = prop::collection::vec(2u32..8, order..=order);
            (shape, 1usize..40, any::<u64>())
        })
        .prop_map(|(shape, nnz, seed)| {
            cstf_tensor::random::RandomTensor::new(shape)
                .nnz(nnz)
                .seed(seed)
                .values_in(-1.0, 1.0)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSTF-COO ≡ sequential MTTKRP on every mode of arbitrary tensors.
    #[test]
    fn coo_matches_sequential(t in arb_tensor(), rank in 1usize..4, fseed in any::<u64>()) {
        let c = test_cluster(3);
        let rdd = tensor_to_rdd(&c, &t, 4).persist(StorageLevel::MemoryRaw);
        let factors = random_factors(t.shape(), rank, fseed);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        for mode in 0..t.order() {
            let dist = mttkrp_coo(&c, &rdd, &factors, t.shape(), mode, &MttkrpOptions::default())
                .unwrap();
            let seq = mttkrp_seq(&t, &refs, mode).unwrap();
            prop_assert!(dist.max_abs_diff(&seq) < 1e-9, "mode {mode}");
        }
    }

    /// CSTF-QCOO ≡ sequential MTTKRP over a full cycle (fixed factors).
    #[test]
    fn qcoo_matches_sequential(t in arb_tensor(), fseed in any::<u64>()) {
        let rank = 2;
        let c = test_cluster(3);
        let rdd = tensor_to_rdd(&c, &t, 4).persist(StorageLevel::MemoryRaw);
        let factors = random_factors(t.shape(), rank, fseed);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        let mut q = QcooState::init(&c, &rdd, &factors, t.shape(), rank, 4).unwrap();
        for mode in 0..t.order() {
            let (out_mode, m) = q.step(&factors[q.next_join_mode()]).unwrap();
            prop_assert_eq!(out_mode, mode);
            let seq = mttkrp_seq(&t, &refs, mode).unwrap();
            prop_assert!(m.max_abs_diff(&seq) < 1e-9, "mode {mode}");
        }
    }

    /// BIGtensor ≡ sequential MTTKRP for 3rd-order tensors, all modes.
    #[test]
    fn bigtensor_matches_sequential(
        shape in prop::collection::vec(2u32..8, 3..=3),
        nnz in 1usize..40,
        seed in any::<u64>(),
        fseed in any::<u64>(),
    ) {
        let t = cstf_tensor::random::RandomTensor::new(shape)
            .nnz(nnz)
            .seed(seed)
            .values_in(-1.0, 1.0)
            .build();
        let c = test_cluster(3);
        let rdd = tensor_to_rdd(&c, &t, 4);
        let factors = random_factors(t.shape(), 2, fseed);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        for mode in 0..3 {
            let dist = cstf_core::bigtensor::bigtensor_mttkrp(&c, &rdd, &factors, t.shape(), mode, 4)
                .unwrap();
            let seq = mttkrp_seq(&t, &refs, mode).unwrap();
            prop_assert!(dist.max_abs_diff(&seq) < 1e-9, "mode {mode}");
        }
    }

    /// The engine's total shuffled bytes for a COO MTTKRP are invariant to
    /// the simulated node count (only the remote/local split moves).
    #[test]
    fn shuffle_bytes_node_invariant(
        nnz in 10usize..60,
        seed in any::<u64>(),
        nodes_a in 1usize..6,
        nodes_b in 6usize..12,
    ) {
        let t = cstf_tensor::random::RandomTensor::new(vec![10, 10, 10])
            .nnz(nnz).seed(seed).build();
        let factors = random_factors(t.shape(), 2, seed);
        let run = |nodes: usize| {
            let c = cstf_dataflow::Cluster::new(
                cstf_dataflow::ClusterConfig::local(2).nodes(nodes).default_parallelism(6),
            );
            let rdd = tensor_to_rdd(&c, &t, 6).persist(StorageLevel::MemoryRaw);
            let _ = rdd.count();
            c.metrics().reset();
            let _ = mttkrp_coo(&c, &rdd, &factors, t.shape(), 0,
                &MttkrpOptions { partitions: Some(6), ..Default::default() }).unwrap();
            c.metrics().snapshot().total_shuffle_bytes()
        };
        prop_assert_eq!(run(nodes_a), run(nodes_b));
    }
}
