//! Integration tests pinning the paper's quantitative claims to the
//! engine's measured behaviour (Table 4, §5, §6.5 directions).

use cstf_core::cost::{iteration_communication, mttkrp_cost, qcoo_savings, Algorithm};
use cstf_core::factors::tensor_to_rdd;
use cstf_core::mttkrp::{mttkrp_coo, MttkrpOptions};
use cstf_core::qcoo::QcooState;
use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_integration_tests::{random_factors, test_cluster};
use cstf_tensor::random::RandomTensor;
use cstf_tensor::CooTensor;

fn tensor3(nnz: usize, seed: u64) -> CooTensor {
    RandomTensor::new(vec![40, 35, 30])
        .nnz(nnz)
        .seed(seed)
        .build()
}

/// Table 4 shuffle counts, measured: 4 / 3 / 2 tensor-sized shuffles per
/// mode-1 MTTKRP for BIGtensor / COO / QCOO.
#[test]
fn table4_shuffle_counts_all_algorithms() {
    let t = tensor3(600, 1);
    let threshold = t.nnz() as u64 / 2;
    let factors = random_factors(t.shape(), 2, 2);

    let algorithms = [
        Algorithm::BigTensor,
        Algorithm::CstfCoo,
        Algorithm::CstfQcoo,
        Algorithm::DfactoSpmv,
    ];
    let counts: Vec<usize> = algorithms
        .iter()
        .map(|alg| {
            let c = test_cluster(4);
            let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
            let _ = rdd.count();
            match alg {
                Algorithm::BigTensor => {
                    c.metrics().reset();
                    let _ =
                        cstf_core::bigtensor::bigtensor_mttkrp(&c, &rdd, &factors, t.shape(), 0, 8)
                            .unwrap();
                }
                Algorithm::CstfCoo => {
                    c.metrics().reset();
                    let _ = mttkrp_coo(&c, &rdd, &factors, t.shape(), 0, &MttkrpOptions::default())
                        .unwrap();
                }
                Algorithm::CstfQcoo => {
                    let mut q = QcooState::init(&c, &rdd, &factors, t.shape(), 2, 8).unwrap();
                    c.metrics().reset();
                    let _ = q.step(&factors[2]).unwrap();
                }
                Algorithm::DfactoSpmv => {
                    c.metrics().reset();
                    let _ = cstf_core::spmv::mttkrp_spmv(
                        &c,
                        &rdd,
                        &factors,
                        t.shape(),
                        0,
                        &MttkrpOptions::default(),
                    )
                    .unwrap();
                }
            }
            c.metrics().snapshot().significant_shuffle_count(threshold)
        })
        .collect();

    let models: Vec<u32> = algorithms
        .iter()
        .map(|&alg| mttkrp_cost(alg, 3, t.nnz() as u64, 2, t.shape()).shuffles)
        .collect();

    // DFacTo-SpMV's four shuffles all clear the nnz/2 significance bar on
    // this tensor: two nnz-sized plus two fiber-sized with F > nnz/2.
    assert_eq!(counts, vec![4, 3, 2, 4]);
    assert_eq!(models, vec![4, 3, 2, 4]);
}

/// §5: per-iteration shuffle counts measured over a full CP-ALS iteration:
/// COO shuffles N² times, QCOO 2N times (plus nothing else tensor-sized).
#[test]
fn per_iteration_shuffle_counts() {
    let t = tensor3(500, 3);
    let threshold = t.nnz() as u64 / 2;
    for (strategy, expect) in [(Strategy::Coo, 9usize), (Strategy::Qcoo, 6)] {
        let c = test_cluster(4);
        // Two iterations; count the second (steady state) via scope diff.
        let res = CpAls::new(2)
            .strategy(strategy)
            .max_iterations(1)
            .skip_fit()
            .seed(1)
            .run(&c, &t);
        assert!(res.is_ok());
        let m = c.metrics().snapshot();
        let steady: usize = m
            .stages()
            .filter(|s| {
                s.scope.starts_with("MTTKRP")
                    && s.kind == cstf_dataflow::StageKind::ShuffleMap
                    && s.shuffle_write_records >= threshold
            })
            .count();
        assert_eq!(steady, expect, "{strategy}");
    }
}

/// §6.5 direction: QCOO shuffles fewer bytes than COO per steady-state
/// iteration, for both 3rd and 4th order tensors.
#[test]
fn qcoo_reduces_total_shuffle_traffic() {
    for shape in [vec![30u32, 25, 20], vec![15, 12, 10, 8]] {
        let t = RandomTensor::new(shape.clone()).nnz(800).seed(4).build();
        let mttkrp_bytes = |strategy| -> u64 {
            let c = test_cluster(8);
            let _ = CpAls::new(2)
                .strategy(strategy)
                .max_iterations(2)
                .skip_fit()
                .seed(2)
                .run(&c, &t)
                .unwrap();
            let m = c.metrics().snapshot();
            m.shuffle_bytes_by_scope()
                .into_iter()
                .filter(|(s, _, _)| s.starts_with("MTTKRP"))
                .map(|(_, r, l)| r + l)
                .sum()
        };
        let coo = mttkrp_bytes(Strategy::Coo);
        let qcoo = mttkrp_bytes(Strategy::Qcoo);
        assert!(
            qcoo < coo,
            "order {}: QCOO {qcoo} not below COO {coo}",
            shape.len()
        );
    }
}

/// §5 savings formula: 1/N, and the analytic communication figures are
/// consistent with it.
#[test]
fn analytic_savings_match_formula() {
    for order in [3usize, 4, 5] {
        let coo = iteration_communication(Algorithm::CstfCoo, order, 1_000, 2) as f64;
        let qcoo = iteration_communication(Algorithm::CstfQcoo, order, 1_000, 2) as f64;
        assert!(((coo - qcoo) / coo - qcoo_savings(order)).abs() < 1e-12);
    }
}

/// Simulated runtimes order correctly: BIGtensor slowest on every node
/// count, and CSTF runtimes decrease from 4 to 16 nodes (Figure 2 shape).
#[test]
fn simulated_runtime_ordering_and_scaling() {
    // work_scale chosen so modeled work dominates fixed stage overheads,
    // as it does at the experiment scales (nnz × work_scale ≈ 1e8+ — the
    // regime of fig2_runtime); with too little work the curves flatten
    // immediately, which is realistic but not what this test checks.
    let t = tensor3(2_000, 5);
    let spark = TimeModel::spark().with_work_scale(100_000.0);
    let hadoop = TimeModel::hadoop().with_work_scale(100_000.0);

    let run = |strategy: Option<Strategy>, nodes: usize| -> JobMetrics {
        let c = test_cluster(nodes);
        match strategy {
            Some(s) => {
                let _ = CpAls::new(2)
                    .strategy(s)
                    .max_iterations(1)
                    .skip_fit()
                    .seed(3)
                    .run(&c, &t)
                    .unwrap();
            }
            None => {
                let _ = cstf_core::bigtensor::bigtensor_cp(&c, &t, 2, 1, 3).unwrap();
            }
        }
        c.metrics().snapshot()
    };

    for nodes in [4usize, 16] {
        let coo = spark.job_time(&run(Some(Strategy::Coo), nodes));
        let qcoo = spark.job_time(&run(Some(Strategy::Qcoo), nodes));
        let big = hadoop.job_time(&run(None, nodes));
        assert!(big > coo, "{nodes} nodes: BIGtensor {big} vs COO {coo}");
        assert!(big > qcoo, "{nodes} nodes: BIGtensor {big} vs QCOO {qcoo}");
    }
    let coo4 = spark.job_time(&run(Some(Strategy::Coo), 4));
    let coo16 = spark.job_time(&run(Some(Strategy::Coo), 16));
    assert!(coo16 < coo4, "COO did not scale: {coo4} → {coo16}");
}

/// The remote/local byte split behaves like Figure 4's setup: on 8 nodes
/// roughly 7/8 of shuffle traffic is remote.
#[test]
fn remote_fraction_matches_uniform_hashing() {
    let t = tensor3(1_500, 6);
    let c = test_cluster(8);
    let _ = CpAls::new(2)
        .strategy(Strategy::Coo)
        .max_iterations(1)
        .skip_fit()
        .seed(4)
        .run(&c, &t)
        .unwrap();
    let m = c.metrics().snapshot();
    let frac = m.total_remote_bytes() as f64 / m.total_shuffle_bytes() as f64;
    assert!((0.8..0.95).contains(&frac), "remote fraction {frac}");
}

/// Determinism across full decompositions: bytes, shuffles and factors
/// are identical run-to-run.
#[test]
fn full_run_determinism() {
    let t = tensor3(700, 7);
    let run = || {
        let c = test_cluster(4);
        let res = CpAls::new(2)
            .strategy(Strategy::Qcoo)
            .max_iterations(3)
            .seed(9)
            .run(&c, &t)
            .unwrap();
        let m = c.metrics().snapshot();
        (
            res.stats.final_fit,
            m.total_remote_bytes(),
            m.total_local_bytes(),
            m.shuffle_count(),
        )
    };
    assert_eq!(run(), run());
}
