//! Cross-checks between the extension implementations and the paper-core
//! pipelines: every MTTKRP implementation in the workspace must agree,
//! and extensions must compose with fault tolerance.

use cstf_core::factors::tensor_to_rdd;
use cstf_core::mttkrp::{mttkrp_coo, mttkrp_coo_broadcast, MttkrpOptions};
use cstf_dataflow::prelude::*;
use cstf_integration_tests::{random_factors, test_cluster};
use cstf_tensor::csf::CsfTensor;
use cstf_tensor::dimtree::DimTree;
use cstf_tensor::mttkrp::{mttkrp as mttkrp_seq, mttkrp_parallel, mttkrp_unfolded};
use cstf_tensor::random::RandomTensor;
use cstf_tensor::DenseMatrix;

/// Six independent MTTKRP implementations, one answer: sequential COO,
/// threaded COO, unfolded×KRP, CSF, dimension tree, distributed COO, and
/// distributed broadcast-join.
#[test]
fn all_seven_mttkrp_implementations_agree() {
    let t = RandomTensor::new(vec![14, 11, 9]).nnz(250).seed(71).build();
    let factors = random_factors(t.shape(), 3, 72);
    let refs: Vec<&DenseMatrix> = factors.iter().collect();
    let c = test_cluster(4);
    let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
    let _ = rdd.count();
    let mut tree = DimTree::new(t.clone(), 3).unwrap();

    for mode in 0..3 {
        let reference = mttkrp_seq(&t, &refs, mode).unwrap();
        let candidates: Vec<(&str, DenseMatrix)> = vec![
            ("parallel", mttkrp_parallel(&t, &refs, mode, 4).unwrap()),
            ("unfolded", mttkrp_unfolded(&t, &refs, mode).unwrap()),
            (
                "csf",
                CsfTensor::rooted_at(&t, mode)
                    .unwrap()
                    .mttkrp_root(&refs)
                    .unwrap(),
            ),
            ("dimtree", tree.mttkrp(&factors, mode).unwrap()),
            (
                "dist-coo",
                mttkrp_coo(
                    &c,
                    &rdd,
                    &factors,
                    t.shape(),
                    mode,
                    &MttkrpOptions::default(),
                )
                .unwrap(),
            ),
            (
                "dist-broadcast",
                mttkrp_coo_broadcast(
                    &c,
                    &rdd,
                    &factors,
                    t.shape(),
                    mode,
                    &MttkrpOptions::default(),
                )
                .unwrap(),
            ),
        ];
        for (name, m) in candidates {
            let diff = m.max_abs_diff(&reference);
            assert!(diff < 1e-9, "{name} mode {mode}: diff {diff}");
        }
    }
}

/// Tensor completion keeps working across a node failure.
#[test]
fn completion_survives_node_failure() {
    let (t, _) = cstf_tensor::random::low_rank_tensor(&[14, 12, 10], 2, 600, 0.0, 73);
    let c = test_cluster(4);
    // Poison the cluster state mid-way: run one completion, fail a node,
    // run another on the same cluster.
    let first = cstf_core::CpCompletion::new(2)
        .max_iterations(6)
        .regularization(1e-3)
        .seed(1)
        .run(&c, &t)
        .unwrap();
    c.simulate_node_failure(2);
    let second = cstf_core::CpCompletion::new(2)
        .max_iterations(6)
        .regularization(1e-3)
        .seed(1)
        .run(&c, &t)
        .unwrap();
    assert!((first.final_rmse - second.final_rmse).abs() < 1e-12);
}

/// Warm start composes with the broadcast strategy and fault injection.
#[test]
fn warm_start_broadcast_strategy_after_failure() {
    let (t, _) = cstf_tensor::random::sparse_low_rank_tensor(&[30, 25, 20], 2, 6, 74);
    let c = test_cluster(4);
    let cold = cstf_core::CpAls::new(2)
        .strategy(cstf_core::Strategy::CooBroadcast)
        .max_iterations(5)
        .seed(2)
        .run(&c, &t)
        .unwrap();
    c.simulate_node_failure(0);
    let resumed = cstf_core::CpAls::new(2)
        .strategy(cstf_core::Strategy::CooBroadcast)
        .max_iterations(5)
        .warm_start(cold.kruskal.clone())
        .run(&c, &t)
        .unwrap();
    assert!(resumed.stats.final_fit >= cold.stats.final_fit - 1e-9);
}

/// HOSVD and CP capture the same exactly-low-rank data.
#[test]
fn tucker_and_cp_agree_on_low_rank_data() {
    let (t, _) = cstf_tensor::random::sparse_low_rank_tensor(&[24, 20, 16], 2, 6, 75);
    let tucker_fit = cstf_tensor::tucker::hosvd(&t, &[2, 2, 2])
        .unwrap()
        .fit(&t)
        .unwrap();
    let cp_fit = cstf_core::CpAls::new(2)
        .max_iterations(25)
        .tolerance(1e-10)
        .seed(3)
        .run(&test_cluster(2), &t)
        .unwrap()
        .stats
        .final_fit;
    assert!(tucker_fit > 0.95, "tucker {tucker_fit}");
    assert!(cp_fit > 0.95, "cp {cp_fit}");
}

/// Slicing composes with decomposition: decomposing a time window of a
/// 4th-order tensor equals decomposing the directly-generated window.
#[test]
fn slice_then_decompose() {
    let t = RandomTensor::new(vec![12, 10, 8, 6])
        .nnz(400)
        .seed(76)
        .build();
    let window = cstf_tensor::slice::range_slice(&t, 3, 2..5).unwrap();
    assert_eq!(window.shape()[3], 3);
    let res = cstf_core::CpAls::new(2)
        .max_iterations(3)
        .seed(4)
        .run(&test_cluster(2), &window)
        .unwrap();
    assert!(res.stats.final_fit.is_finite());
    assert_eq!(res.kruskal.factors[3].rows(), 3);
}

/// The cluster handle is thread-safe: concurrent decompositions of
/// different tensors on one cluster both succeed and match their
/// single-threaded results.
#[test]
fn concurrent_decompositions_share_a_cluster() {
    use cstf_core::{CpAls, Strategy};
    let t1 = RandomTensor::new(vec![12, 11, 10])
        .nnz(200)
        .seed(81)
        .build();
    let t2 = RandomTensor::new(vec![9, 8, 7]).nnz(150).seed(82).build();

    let solo = |t: &cstf_tensor::CooTensor| {
        CpAls::new(2)
            .strategy(Strategy::Coo)
            .max_iterations(3)
            .seed(5)
            .run(&test_cluster(4), t)
            .unwrap()
            .stats
            .final_fit
    };
    let (fit1, fit2) = (solo(&t1), solo(&t2));

    let shared = test_cluster(4);
    let (got1, got2) = std::thread::scope(|s| {
        let c1 = shared.clone();
        let c2 = shared.clone();
        let h1 = s.spawn(move || {
            CpAls::new(2)
                .strategy(Strategy::Coo)
                .max_iterations(3)
                .seed(5)
                .run(&c1, &t1)
                .unwrap()
                .stats
                .final_fit
        });
        let h2 = s.spawn(move || {
            CpAls::new(2)
                .strategy(Strategy::Coo)
                .max_iterations(3)
                .seed(5)
                .run(&c2, &t2)
                .unwrap()
                .stats
                .final_fit
        });
        (h1.join().unwrap(), h2.join().unwrap())
    });
    assert!((got1 - fit1).abs() < 1e-9);
    assert!((got2 - fit2).abs() < 1e-9);
}
