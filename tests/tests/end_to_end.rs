//! End-to-end decomposition tests spanning all workspace crates:
//! generation → distribution → CP-ALS → fit evaluation.

use cstf_core::{CpAls, Strategy};
use cstf_integration_tests::test_cluster;
use cstf_tensor::random::{sparse_low_rank_tensor, RandomTensor};
use cstf_tensor::{io, CooTensor};

/// A sparse exactly-rank-2 tensor must be recovered to near-perfect fit
/// by a rank-2 decomposition with either strategy.
#[test]
fn recovers_sparse_low_rank_structure() {
    let (tensor, _) = sparse_low_rank_tensor(&[60, 50, 40], 2, 8, 5);
    for strategy in [Strategy::Coo, Strategy::Qcoo] {
        let cluster = test_cluster(4);
        let res = CpAls::new(2)
            .strategy(strategy)
            .max_iterations(25)
            .tolerance(1e-9)
            .seed(3)
            .run(&cluster, &tensor)
            .unwrap();
        assert!(
            res.stats.final_fit > 0.95,
            "{strategy}: fit {}",
            res.stats.final_fit
        );
    }
}

/// The decomposition recovers the *planted factors*, not just the fit:
/// factor match score against the ground truth approaches 1.
#[test]
fn recovers_planted_factors_by_fms() {
    let (tensor, truth) = sparse_low_rank_tensor(&[50, 45, 40], 2, 8, 12);
    let cluster = test_cluster(4);
    let res = CpAls::new(2)
        .strategy(Strategy::Qcoo)
        .max_iterations(30)
        .tolerance(1e-10)
        .seed(4)
        .run(&cluster, &tensor)
        .unwrap();
    let fms = res.kruskal.factor_match_score(&truth).unwrap();
    assert!(fms > 0.95, "factor match score {fms}");
}

/// Nonnegative decomposition of nonnegative data recovers structure while
/// honoring the constraint.
#[test]
fn nonnegative_recovery() {
    let (tensor, truth) = sparse_low_rank_tensor(&[40, 35, 30], 2, 7, 13);
    // sparse_low_rank_tensor uses positive factor values, so the truth is
    // reachable under the constraint.
    let cluster = test_cluster(4);
    let res = CpAls::new(2)
        .nonnegative()
        .strategy(Strategy::Coo)
        .max_iterations(25)
        .seed(5)
        .run(&cluster, &tensor)
        .unwrap();
    assert!(res.stats.final_fit > 0.9, "fit {}", res.stats.final_fit);
    assert!(res
        .kruskal
        .factors
        .iter()
        .all(|f| f.data().iter().all(|&x| x >= 0.0)));
    let fms = res.kruskal.factor_match_score(&truth).unwrap();
    assert!(fms > 0.9, "fms {fms}");
}

/// BIGtensor solves the same optimization: same seed ⇒ same trajectory
/// as CSTF-COO up to float reassociation.
#[test]
fn bigtensor_reaches_same_fit() {
    let (tensor, _) = sparse_low_rank_tensor(&[40, 35, 30], 2, 6, 6);
    let cluster = test_cluster(4);
    let cstf = CpAls::new(2)
        .strategy(Strategy::Coo)
        .max_iterations(10)
        .seed(4)
        .run(&cluster, &tensor)
        .unwrap();
    let cluster2 = test_cluster(4);
    let big = cstf_core::bigtensor::bigtensor_cp(&cluster2, &tensor, 2, 10, 4).unwrap();
    assert!((cstf.stats.final_fit - big.stats.final_fit).abs() < 1e-6);
}

/// The fit trajectory is (numerically) non-decreasing: ALS is a monotone
/// block-coordinate descent on the reconstruction error.
#[test]
fn fit_is_monotone_nondecreasing() {
    let (tensor, _) = sparse_low_rank_tensor(&[30, 30, 30], 3, 6, 7);
    let cluster = test_cluster(2);
    let res = CpAls::new(3)
        .strategy(Strategy::Qcoo)
        .max_iterations(12)
        .seed(8)
        .run(&cluster, &tensor)
        .unwrap();
    for w in res.stats.fits.windows(2) {
        assert!(w[1] >= w[0] - 1e-8, "fit regressed: {:?}", res.stats.fits);
    }
}

/// Full pipeline through the FROSTT file format: write → read → decompose.
#[test]
fn tns_roundtrip_then_decompose() {
    let (tensor, _) = sparse_low_rank_tensor(&[25, 20, 15], 2, 5, 9);
    let dir = std::env::temp_dir().join("cstf_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.tns");
    io::write_tns_file(&tensor, &path).unwrap();
    let loaded = io::read_tns_file(&path).unwrap();
    assert_eq!(loaded.nnz(), tensor.nnz());

    let cluster = test_cluster(2);
    let res = CpAls::new(2)
        .max_iterations(15)
        .seed(1)
        .run(&cluster, &loaded)
        .unwrap();
    assert!(res.stats.final_fit > 0.9, "fit {}", res.stats.final_fit);
    std::fs::remove_file(path).ok();
}

/// Order-5 tensors decompose with both strategies (the paper motivates
/// higher-order support; BIGtensor cannot do this at all).
#[test]
fn fifth_order_decomposition() {
    let tensor = RandomTensor::new(vec![8, 7, 6, 5, 4])
        .nnz(300)
        .seed(10)
        .build();
    for strategy in [Strategy::Coo, Strategy::Qcoo] {
        let cluster = test_cluster(3);
        let res = CpAls::new(2)
            .strategy(strategy)
            .max_iterations(3)
            .seed(2)
            .run(&cluster, &tensor)
            .unwrap();
        assert_eq!(res.kruskal.order(), 5);
        assert!(res.stats.final_fit.is_finite());
        assert!(res.kruskal.factors.iter().all(|f| f.all_finite()));
    }
}

/// Decomposition of a tensor with duplicate-summed entries and negative
/// values behaves sanely.
#[test]
fn negative_values_and_duplicates() {
    let mut t = CooTensor::new(vec![10, 10, 10]);
    for i in 0..10u32 {
        t.push(&[i, i, i], -2.0).unwrap();
        t.push(&[i, i, i], 1.0).unwrap(); // duplicate → sums to -1
        t.push(&[i, (i + 1) % 10, i], 3.0).unwrap();
    }
    t.sum_duplicates();
    assert_eq!(t.nnz(), 20);
    let cluster = test_cluster(2);
    let res = CpAls::new(2)
        .max_iterations(10)
        .seed(5)
        .run(&cluster, &t)
        .unwrap();
    assert!(res.stats.final_fit.is_finite());
    assert!(res.stats.final_fit > 0.0);
}

/// Rank larger than needed still converges (over-parameterized CP).
#[test]
fn overcomplete_rank_converges() {
    let (tensor, _) = sparse_low_rank_tensor(&[20, 20, 20], 1, 5, 11);
    let cluster = test_cluster(2);
    let res = CpAls::new(4)
        .max_iterations(15)
        .seed(6)
        .run(&cluster, &tensor)
        .unwrap();
    assert!(res.stats.final_fit > 0.9, "fit {}", res.stats.final_fit);
}

/// Several decompositions can share one cluster; cached blocks are
/// released between runs so memory does not accumulate.
#[test]
fn sequential_runs_share_cluster_without_leaks() {
    let cluster = test_cluster(4);
    let blocks_before = cluster.block_manager().len();
    for seed in 0..3 {
        let t = RandomTensor::new(vec![15, 15, 15])
            .nnz(150)
            .seed(seed)
            .build();
        let _ = CpAls::new(2)
            .strategy(Strategy::Qcoo)
            .max_iterations(2)
            .seed(seed)
            .run(&cluster, &t)
            .unwrap();
    }
    assert_eq!(cluster.block_manager().len(), blocks_before);
}
