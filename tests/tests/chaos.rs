//! Chaos suite: deterministic task-level fault injection must never change
//! numerical results. Every test here compares a run on a cluster whose
//! [`FaultConfig`] kills, delays, or late-crashes task attempts against the
//! identical job on a fault-free cluster, and demands *bit-identical*
//! output — the executor's bounded retries, first-writer-wins commit and
//! speculative backups are invisible to the algorithm layer.

use cstf_core::factors::tensor_to_rdd;
use cstf_core::mttkrp::{mttkrp_coo, MttkrpOptions};
use cstf_core::qcoo::QcooState;
use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_integration_tests::{random_factors, test_cluster};
use cstf_tensor::random::{sparse_low_rank_tensor, RandomTensor};
use cstf_tensor::{CooTensor, DenseMatrix};

fn tensor() -> CooTensor {
    RandomTensor::new(vec![16, 13, 11])
        .nnz(350)
        .seed(71)
        .build()
}

/// A cluster whose injector crashes ~`probability` of first task attempts,
/// with enough attempt budget that every task still completes.
fn chaos_cluster(seed: u64, probability: f64) -> Cluster {
    Cluster::new(
        ClusterConfig::local(4)
            .nodes(4)
            .max_task_attempts(4)
            .faults(FaultConfig::crashes(seed, probability)),
    )
}

fn assert_bit_identical(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    // Bitwise, not approximate: retried/speculative attempts recompute the
    // exact same partition, so even the float bit patterns must agree.
    let (da, db) = (a.data(), b.data());
    for i in 0..da.len() {
        assert_eq!(
            da[i].to_bits(),
            db[i].to_bits(),
            "{what}: element {i} differs ({} vs {})",
            da[i],
            db[i]
        );
    }
}

/// COO-MTTKRP is bit-identical under 20 distinct fault schedules, each of
/// which actually kills at least one task attempt.
#[test]
fn coo_mttkrp_bit_identical_across_twenty_fault_schedules() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 72);

    let clean = {
        let c = test_cluster(4);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        (0..t.order())
            .map(|m| mttkrp_coo(&c, &rdd, &factors, t.shape(), m, &MttkrpOptions::default()))
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    };

    for seed in 0..20u64 {
        let c = chaos_cluster(seed, 0.7);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        for (mode, expect) in clean.iter().enumerate() {
            let got = mttkrp_coo(
                &c,
                &rdd,
                &factors,
                t.shape(),
                mode,
                &MttkrpOptions::default(),
            )
            .unwrap();
            assert_bit_identical(&got, expect, &format!("seed {seed} mode {mode}"));
        }
        let m = c.metrics().snapshot();
        assert!(
            m.total_task_failures() >= 1,
            "seed {seed}: schedule injected no faults — the run proved nothing"
        );
        assert_eq!(
            m.total_task_retries(),
            m.total_task_failures(),
            "seed {seed}: every failure must be retried exactly once"
        );
    }
}

/// A full QCOO mode cycle (join → reduce chains with persisted state)
/// survives crash injection bit-identically.
#[test]
fn qcoo_full_mode_cycle_bit_identical_under_faults() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 73);

    let run = |c: &Cluster| -> Vec<DenseMatrix> {
        let rdd = tensor_to_rdd(c, &t, 8).persist(StorageLevel::MemoryRaw);
        let mut q = QcooState::init(c, &rdd, &factors, t.shape(), 2, 8).unwrap();
        (0..t.order())
            .map(|mode| {
                let (out_mode, m) = q.step(&factors[q.next_join_mode()]).unwrap();
                assert_eq!(out_mode, mode);
                m
            })
            .collect()
    };

    let reference = run(&test_cluster(4));
    for seed in [3u64, 17, 40, 99] {
        let c = chaos_cluster(seed, 0.6);
        let faulty = run(&c);
        for (mode, (got, expect)) in faulty.iter().zip(&reference).enumerate() {
            assert_bit_identical(got, expect, &format!("seed {seed} qcoo mode {mode}"));
        }
        assert!(c.metrics().snapshot().total_task_failures() >= 1);
    }
}

/// Acceptance criterion: a full CP-ALS iteration produces bit-identical
/// factor matrices and weights with and without injected faults.
#[test]
fn cp_als_iteration_bit_identical_under_faults() {
    let (tensor, _) = sparse_low_rank_tensor(&[30, 25, 20], 2, 8, 74);

    for strategy in [Strategy::Coo, Strategy::Qcoo] {
        let run = |c: &Cluster| {
            CpAls::new(2)
                .strategy(strategy)
                .max_iterations(1)
                .seed(7)
                .run(c, &tensor)
                .unwrap()
        };
        let clean = run(&test_cluster(4));
        let c = chaos_cluster(11, 0.7);
        let faulty = run(&c);

        assert_eq!(
            clean
                .kruskal
                .weights
                .iter()
                .map(|w| w.to_bits())
                .collect::<Vec<_>>(),
            faulty
                .kruskal
                .weights
                .iter()
                .map(|w| w.to_bits())
                .collect::<Vec<_>>(),
            "{strategy}: weights drifted under faults"
        );
        for (m, (a, b)) in clean
            .kruskal
            .factors
            .iter()
            .zip(&faulty.kruskal.factors)
            .enumerate()
        {
            assert_bit_identical(b, a, &format!("{strategy} factor {m}"));
        }
        assert!(
            c.metrics().snapshot().total_task_failures() >= 1,
            "{strategy}: no fault was actually injected"
        );
    }
}

/// Metrics regression: shuffle write/read byte and record counts must come
/// only from winning attempts — a retried map task may not double-register
/// its output.
#[test]
fn shuffle_metrics_not_double_counted_on_retry() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 75);

    let run = |c: &Cluster| {
        let rdd = tensor_to_rdd(c, &t, 8).persist(StorageLevel::MemoryRaw);
        for mode in 0..t.order() {
            mttkrp_coo(
                c,
                &rdd,
                &factors,
                t.shape(),
                mode,
                &MttkrpOptions::default(),
            )
            .unwrap();
        }
        c.metrics().snapshot()
    };

    let clean = run(&test_cluster(4));
    // Early crashes (before compute) and late crashes (after the task body
    // produced its map output) must both leave the counters untouched.
    for faults in [
        FaultConfig::crashes(21, 0.8),
        FaultConfig::crashes(22, 0.4).with_late_crashes(0.4),
    ] {
        let c = Cluster::new(
            ClusterConfig::local(4)
                .nodes(4)
                .max_task_attempts(4)
                .faults(faults),
        );
        let faulty = run(&c);
        assert!(faulty.total_task_failures() >= 1, "schedule was a no-op");
        assert_eq!(clean.shuffle_count(), faulty.shuffle_count());
        for (cs, fs) in clean.stages().zip(faulty.stages()) {
            assert_eq!(
                cs.shuffle_write_records, fs.shuffle_write_records,
                "{}",
                fs.name
            );
            assert_eq!(
                cs.shuffle_write_bytes, fs.shuffle_write_bytes,
                "{}",
                fs.name
            );
            assert_eq!(
                cs.shuffle_read_records, fs.shuffle_read_records,
                "{}",
                fs.name
            );
            // A late-crashed attempt may have warmed the cache before dying
            // (block puts are idempotent side effects), so the winning retry
            // can legitimately compute *fewer* records — never more.
            assert!(
                fs.records_computed <= cs.records_computed,
                "{}: retry inflated records_computed ({} > {})",
                fs.name,
                fs.records_computed,
                cs.records_computed
            );
            assert_eq!(
                cs.remote_bytes_read + cs.local_bytes_read,
                fs.remote_bytes_read + fs.local_bytes_read,
                "{}: total shuffle read drifted",
                fs.name
            );
        }
    }
}

/// Injected delays plus speculative execution: backups race the stragglers,
/// losers are discarded, and the result — and every shuffle counter — is
/// still bit-identical to the quiet cluster's.
#[test]
fn speculation_under_injected_delays_is_bit_identical() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 76);

    let run = |c: &Cluster| {
        let rdd = tensor_to_rdd(c, &t, 8).persist(StorageLevel::MemoryRaw);
        let out = mttkrp_coo(c, &rdd, &factors, t.shape(), 0, &MttkrpOptions::default()).unwrap();
        (out, c.metrics().snapshot())
    };

    let (clean, clean_m) = run(&test_cluster(4));
    let c = Cluster::new(
        ClusterConfig::local(4)
            .nodes(4)
            .speculation(1.2, 0.005)
            .faults(FaultConfig::crashes(31, 0.0).with_delays(0.5, 40)),
    );
    let (slow, slow_m) = run(&c);

    assert_bit_identical(&slow, &clean, "speculated mttkrp");
    assert_eq!(slow_m.total_task_failures(), 0, "delays are not failures");
    assert!(
        slow_m.total_speculative_won() <= slow_m.total_speculative_launched(),
        "wins cannot exceed launches"
    );
    for (cs, fs) in clean_m.stages().zip(slow_m.stages()) {
        assert_eq!(
            cs.shuffle_write_records, fs.shuffle_write_records,
            "{}: losing speculative duplicate double-counted its write",
            fs.name
        );
        assert_eq!(
            cs.shuffle_write_bytes, fs.shuffle_write_bytes,
            "{}",
            fs.name
        );
        assert_eq!(
            cs.shuffle_read_records, fs.shuffle_read_records,
            "{}",
            fs.name
        );
    }
}

/// The same fault seed replays the same schedule: failure counters are a
/// deterministic function of (seed, job), making chaos runs reproducible.
#[test]
fn fault_schedules_replay_deterministically() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 77);

    let count = |seed: u64| {
        let c = chaos_cluster(seed, 0.5);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        mttkrp_coo(&c, &rdd, &factors, t.shape(), 0, &MttkrpOptions::default()).unwrap();
        c.metrics().snapshot().total_task_failures()
    };

    assert_eq!(count(42), count(42), "same seed must replay identically");
    // Distinct seeds should eventually disagree — check a small window.
    assert!(
        (0..8u64)
            .map(count)
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1,
        "eight seeds all produced identical schedules"
    );
}
