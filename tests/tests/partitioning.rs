//! Partitioner-aware scheduling across crates: the shuffle-skipping hot
//! paths must be invisible to the algorithm layer. Every test compares a
//! narrow (co-partitioned or pre-partitioned) pipeline against the fully
//! shuffled reference and demands *bit-identical* factors — on a quiet
//! cluster, after `simulate_node_failure`, and under seeded task-crash
//! schedules.

use cstf_core::factors::{factor_to_rdd, tensor_to_rdd, tensor_to_rdd_keyed};
use cstf_core::mttkrp::{join_order, mttkrp_coo, mttkrp_coo_pre, MttkrpOptions};
use cstf_core::qcoo::{QcooOptions, QcooState};
use cstf_core::{CpAls, Partitioning, Strategy};
use cstf_dataflow::prelude::*;
use cstf_integration_tests::{random_factors, test_cluster};
use cstf_tensor::random::RandomTensor;
use cstf_tensor::{CooTensor, DenseMatrix};
use std::sync::Arc;

fn tensor() -> CooTensor {
    RandomTensor::new(vec![15, 12, 10])
        .nnz(320)
        .seed(90)
        .build()
}

/// A cluster whose injector crashes ~`probability` of first task attempts,
/// with enough attempt budget that every task still completes.
fn chaos_cluster(seed: u64, probability: f64) -> Cluster {
    Cluster::new(
        ClusterConfig::local(4)
            .nodes(4)
            .max_task_attempts(4)
            .faults(FaultConfig::crashes(seed, probability)),
    )
}

fn assert_bit_identical(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    let (da, db) = (a.data(), b.data());
    for i in 0..da.len() {
        assert_eq!(
            da[i].to_bits(),
            db[i].to_bits(),
            "{what}: element {i} differs ({} vs {})",
            da[i],
            db[i]
        );
    }
}

/// The factor-row RDD carries its partitioner across the crate boundary.
#[test]
fn partitioned_factor_rdd_reports_provenance() {
    let c = test_cluster(2);
    let factors = random_factors(&[10, 8, 6], 2, 91);
    let p: Arc<dyn KeyPartitioner<u32>> = Arc::new(HashPartitioner::new(6));
    let pref = PartitionerRef::of(p);
    let rdd = factor_to_rdd(&c, &factors[0], 6, Some(&pref));
    assert_eq!(rdd.partitioner().unwrap().sig(), PartitionerSig::Hash(6));
    assert_eq!(rdd.count(), 10);
}

/// The fully narrow first join of `mttkrp_coo_pre` recovers bit-identically
/// from the loss of any node: narrow dependencies re-enter lineage
/// recomputation just like shuffle outputs do.
#[test]
fn pre_partitioned_mttkrp_recovers_from_every_node_failure() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 92);
    let mode = 0;
    let first = join_order(t.order(), mode)[0];

    // Same partition count as the pre-partitioned runs: bit-identity only
    // holds when records land in the same buckets in the same order.
    let clean = {
        let c = test_cluster(4);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        let _ = rdd.count();
        let opts = MttkrpOptions {
            partitions: Some(8),
            ..MttkrpOptions::default()
        };
        mttkrp_coo(&c, &rdd, &factors, t.shape(), mode, &opts).unwrap()
    };

    for node in 0..4 {
        let c = test_cluster(4);
        let p: Arc<dyn KeyPartitioner<u32>> = Arc::new(HashPartitioner::new(8));
        let pref = PartitionerRef::of(p);
        let keyed =
            tensor_to_rdd_keyed(&c, &t, first, 8, Some(&pref)).persist(StorageLevel::MemoryRaw);
        let _ = keyed.count();
        let opts = MttkrpOptions {
            partitions: Some(8),
            ..MttkrpOptions::default()
        };
        // Warm the caches, then kill a node and recompute.
        let warm = mttkrp_coo_pre(&c, &keyed, &factors, t.shape(), mode, &opts).unwrap();
        assert_bit_identical(&clean, &warm, "pre-partitioned quiet");
        c.simulate_node_failure(node);
        let recovered = mttkrp_coo_pre(&c, &keyed, &factors, t.shape(), mode, &opts).unwrap();
        assert_bit_identical(&clean, &recovered, &format!("after losing node {node}"));
    }
}

/// Chaos-seed sweep: every partitioner-awareness level of CP-ALS produces
/// the same bits as the fully shuffled quiet run, under ten distinct
/// task-crash schedules.
#[test]
fn partitioning_levels_bit_identical_across_chaos_seeds() {
    let t = tensor();
    let reference = CpAls::new(2)
        .strategy(Strategy::Coo)
        .partitioning(Partitioning::None)
        .max_iterations(2)
        .skip_fit()
        .seed(7)
        .run(&test_cluster(4), &t)
        .unwrap();

    for chaos_seed in 0..10u64 {
        for level in [
            Partitioning::CoPartitionedFactors,
            Partitioning::PrePartitionedTensor,
        ] {
            let c = chaos_cluster(chaos_seed, 0.15);
            let res = CpAls::new(2)
                .strategy(Strategy::Coo)
                .partitioning(level)
                .max_iterations(2)
                .skip_fit()
                .seed(7)
                .run(&c, &t)
                .unwrap();
            for (a, b) in reference
                .kruskal
                .factors
                .iter()
                .zip(res.kruskal.factors.iter())
            {
                assert_bit_identical(a, b, &format!("seed {chaos_seed}, {level:?}"));
            }
        }
    }
}

/// Co-partitioned QCOO steps stay bit-identical to the shuffled QCOO
/// pipeline while nodes die between steps.
#[test]
fn co_partitioned_qcoo_survives_failures_between_steps() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 93);

    // Reference: legacy (fully shuffled) QCOO over a full mode cycle.
    let reference: Vec<DenseMatrix> = {
        let c = test_cluster(4);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        let _ = rdd.count();
        let opts = QcooOptions {
            co_partition_factors: false,
            ..QcooOptions::default()
        };
        let mut q = QcooState::init_with(&c, &rdd, &factors, t.shape(), 2, 8, opts).unwrap();
        (0..3)
            .map(|_| q.step(&factors[q.next_join_mode()]).unwrap().1)
            .collect()
    };

    // Co-partitioned run with a different node dying before every step.
    let c = test_cluster(4);
    let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
    let _ = rdd.count();
    let mut q = QcooState::init(&c, &rdd, &factors, t.shape(), 2, 8).unwrap();
    for (step, expect) in reference.iter().enumerate() {
        c.simulate_node_failure(step % 4);
        let (_, m) = q.step(&factors[q.next_join_mode()]).unwrap();
        assert_bit_identical(expect, &m, &format!("QCOO step {step}"));
    }
}

/// A full pre-partitioned decomposition re-run on a cluster that lost a
/// node mid-way matches its own first run (fresh lineage each run).
#[test]
fn pre_partitioned_decomposition_unaffected_by_mid_cluster_failure() {
    let t = tensor();
    let c = test_cluster(4);
    let run = |c: &Cluster| {
        CpAls::new(2)
            .strategy(Strategy::Coo)
            .partitioning(Partitioning::PrePartitionedTensor)
            .max_iterations(2)
            .seed(11)
            .run(c, &t)
            .unwrap()
    };
    let first = run(&c);
    c.simulate_node_failure(2);
    let second = run(&c);
    for (a, b) in first
        .kruskal
        .factors
        .iter()
        .zip(second.kruskal.factors.iter())
    {
        assert_bit_identical(a, b, "re-run after node failure");
    }
    assert!((first.stats.final_fit - second.stats.final_fit).abs() == 0.0);
}
