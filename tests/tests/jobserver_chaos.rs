//! Job-server chaos suite: concurrent CP-ALS jobs from multiple tenants
//! on one shared cluster, with the PR 1 fault injector killing, delaying
//! and late-crashing task attempts underneath them. Every job must stay
//! bit-identical to its solo sequential run, and retry/speculation
//! counters must remain per-job invariant — faults and cross-job
//! interleaving are invisible above the executor.

use cstf_core::{CpAls, Strategy};
use cstf_dataflow::prelude::*;
use cstf_tensor::random::RandomTensor;
use cstf_tensor::{CooTensor, KruskalTensor};

fn tensor() -> CooTensor {
    RandomTensor::new(vec![16, 13, 11])
        .nnz(350)
        .seed(71)
        .build()
}

/// One CP-ALS job variant: strategy and init seed differ per tenant, so
/// concurrent jobs are genuinely distinct workloads.
fn run_cp_als(c: &Cluster, t: &CooTensor, variant: u64) -> KruskalTensor {
    let strategy = if variant.is_multiple_of(2) {
        Strategy::Coo
    } else {
        Strategy::Qcoo
    };
    CpAls::new(2)
        .strategy(strategy)
        .max_iterations(1)
        .seed(100 + variant)
        .run(c, t)
        .unwrap()
        .kruskal
}

type Bits = (Vec<u64>, Vec<Vec<u64>>);

fn kruskal_bits(k: &KruskalTensor) -> Bits {
    (
        k.weights.iter().map(|w| w.to_bits()).collect(),
        k.factors
            .iter()
            .map(|f| f.data().iter().map(|x| x.to_bits()).collect())
            .collect(),
    )
}

const JOBS: u64 = 3;

/// Solo baselines on a quiet forced-sequential cluster, one per variant.
fn baselines(t: &CooTensor) -> Vec<(Bits, JobMetrics)> {
    (0..JOBS)
        .map(|v| {
            let c = Cluster::new(ClusterConfig::local(4).nodes(4).sequential_stages());
            let k = run_cp_als(&c, t, v);
            (kruskal_bits(&k), c.metrics().snapshot())
        })
        .collect()
}

/// Concurrent CP-ALS jobs under crash / late-crash / delay schedules:
/// factor matrices and weights stay bit-identical to the solo baselines
/// across fault seeds, and per-job stage accounting matches the solo
/// run's exactly (winner-only commits under cross-job interleaving).
#[test]
fn concurrent_cp_als_bit_identical_under_chaos() {
    let t = tensor();
    let reference = baselines(&t);

    for seed in 0..8u64 {
        // Half the schedules add late crashes (attempts that die *after*
        // computing, possibly having warmed persisted-RDD caches).
        let late_crashes = seed >= 4;
        let mut faults = FaultConfig::crashes(seed, 0.3).with_delays(0.2, 2);
        if late_crashes {
            faults = faults.with_late_crashes(0.1);
        }
        let config = ClusterConfig::local(4)
            .nodes(4)
            .max_task_attempts(4)
            .faults(faults);
        let c = Cluster::new(config);
        let server = JobServer::new(&c, JobServerConfig::fair(JOBS as usize));
        let handles: Vec<_> = (0..JOBS)
            .map(|v| {
                let t = t.clone();
                server.submit(&format!("tenant-{v}"), move |c: &Cluster| {
                    kruskal_bits(&run_cp_als(c, &t, v))
                })
            })
            .collect();
        let ids: Vec<usize> = handles.iter().map(|h| h.id()).collect();
        for (v, h) in handles.into_iter().enumerate() {
            let got = h.join().completed().expect("job completed");
            assert_eq!(
                got, reference[v].0,
                "seed {seed}: job {v} drifted under chaos interleaving"
            );
        }
        server.shutdown();

        let m = c.metrics().snapshot();
        for (v, &id) in ids.iter().enumerate() {
            let solo = &reference[v].1;
            // Per-job invariants: the job ran the same stages and moved
            // the same shuffle bytes as its solo run, and within the job
            // every injected failure was retried exactly once.
            assert_eq!(
                m.stages_in_server_job(id).count(),
                solo.stages().count(),
                "seed {seed}: job {v} stage set changed"
            );
            let (bytes, write_records): (u64, u64) = m
                .stages_in_server_job(id)
                .map(|s| {
                    (
                        s.remote_bytes_read + s.local_bytes_read,
                        s.shuffle_write_records,
                    )
                })
                .fold((0, 0), |(b, r), (db, dr)| (b + db, r + dr));
            if late_crashes {
                // A late-crashed attempt may have warmed a persisted
                // RDD's cache before dying (block puts are idempotent),
                // letting the winning retry skip a shuffle read — so
                // bytes may shrink, but never grow (no retry leaks).
                assert!(
                    bytes <= solo.total_shuffle_bytes(),
                    "seed {seed}: job {v} read more shuffle bytes than solo (retry leak)"
                );
            } else {
                assert_eq!(
                    bytes,
                    solo.total_shuffle_bytes(),
                    "seed {seed}: job {v} shuffle bytes drifted (retry leak)"
                );
            }
            assert_eq!(
                write_records,
                solo.stages().map(|s| s.shuffle_write_records).sum::<u64>(),
                "seed {seed}: job {v} double-registered a map output"
            );
            let (failures, retries): (u64, u64) = m
                .stages_in_server_job(id)
                .map(|s| (s.task_failures, s.task_retries))
                .fold((0, 0), |(f, r), (df, dr)| (f + df, r + dr));
            assert_eq!(
                retries, failures,
                "seed {seed}: job {v} lost or duplicated a retry"
            );
            let speculative: u64 = m
                .stages_in_server_job(id)
                .map(|s| s.speculative_launched)
                .sum();
            assert_eq!(
                speculative, 0,
                "seed {seed}: speculation is off, job {v} launched backups"
            );
        }
    }
}

/// Speculation on top of chaos: delayed stragglers get backups while
/// other tenants' jobs interleave, yet per-job results and winner-only
/// counters still hold (wins ≤ launches, failures still retried 1:1).
#[test]
fn concurrent_jobs_with_speculation_stay_invariant() {
    let t = tensor();
    let reference = baselines(&t);

    let config = ClusterConfig::local(4)
        .nodes(4)
        .max_task_attempts(4)
        .speculation(1.5, 0.01)
        .faults(FaultConfig::crashes(5, 0.2).with_delays(0.4, 10));
    let c = Cluster::new(config);
    let server = JobServer::new(&c, JobServerConfig::fair(JOBS as usize));
    let handles: Vec<_> = (0..JOBS)
        .map(|v| {
            let t = t.clone();
            server.submit(&format!("tenant-{v}"), move |c: &Cluster| {
                kruskal_bits(&run_cp_als(c, &t, v))
            })
        })
        .collect();
    let ids: Vec<usize> = handles.iter().map(|h| h.id()).collect();
    for (v, h) in handles.into_iter().enumerate() {
        let got = h.join().completed().expect("job completed");
        assert_eq!(got, reference[v].0, "job {v} drifted under speculation");
    }
    server.shutdown();

    let m = c.metrics().snapshot();
    for &id in &ids {
        let (failures, retries, launched, won) =
            m.stages_in_server_job(id)
                .fold((0u64, 0u64, 0u64, 0u64), |(f, r, l, w), s| {
                    (
                        f + s.task_failures,
                        r + s.task_retries,
                        l + s.speculative_launched,
                        w + s.speculative_won,
                    )
                });
        assert_eq!(retries, failures, "job {id}: retry invariant broke");
        assert!(won <= launched, "job {id}: wins exceed launches");
    }
}
