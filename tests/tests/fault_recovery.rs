//! Fault tolerance at the algorithm level: node failures between MTTKRP
//! steps must not change decomposition results — the property that makes
//! RDD-based tensor factorization suitable for "data-center settings"
//! (paper §1).

use cstf_core::factors::tensor_to_rdd;
use cstf_core::mttkrp::{mttkrp_coo, MttkrpOptions};
use cstf_core::qcoo::QcooState;
use cstf_dataflow::prelude::*;
use cstf_integration_tests::{random_factors, test_cluster};
use cstf_tensor::random::RandomTensor;
use cstf_tensor::{CooTensor, DenseMatrix};

fn tensor() -> CooTensor {
    RandomTensor::new(vec![15, 12, 10])
        .nnz(300)
        .seed(51)
        .build()
}

#[test]
fn coo_mttkrp_survives_node_failure() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 52);
    let c = test_cluster(4);
    let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
    let _ = rdd.count();
    let clean = mttkrp_coo(&c, &rdd, &factors, t.shape(), 0, &MttkrpOptions::default()).unwrap();

    c.simulate_node_failure(1);
    let recovered =
        mttkrp_coo(&c, &rdd, &factors, t.shape(), 0, &MttkrpOptions::default()).unwrap();
    assert_eq!(
        clean.max_abs_diff(&recovered),
        0.0,
        "bit-identical recovery"
    );
}

#[test]
fn qcoo_pipeline_survives_failures_between_steps() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 53);
    let refs: Vec<&DenseMatrix> = factors.iter().collect();

    // Reference: clean run over a full mode cycle.
    let reference: Vec<DenseMatrix> = {
        let c = test_cluster(4);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        let _ = rdd.count();
        let mut q = QcooState::init(&c, &rdd, &factors, t.shape(), 2, 8).unwrap();
        (0..3)
            .map(|_| q.step(&factors[q.next_join_mode()]).unwrap().1)
            .collect()
    };

    // Faulty run: a different node dies before every step.
    let c = test_cluster(4);
    let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
    let _ = rdd.count();
    let mut q = QcooState::init(&c, &rdd, &factors, t.shape(), 2, 8).unwrap();
    for (step, expect) in reference.iter().enumerate() {
        let (lost_blocks, lost_outputs) = c.simulate_node_failure(step % 4);
        assert!(
            lost_blocks + lost_outputs > 0,
            "failure at step {step} should lose something"
        );
        let (_, m) = q.step(&factors[q.next_join_mode()]).unwrap();
        assert_eq!(
            m.max_abs_diff(expect),
            0.0,
            "step {step} diverged after failure"
        );
    }
    // Sequential reference still agrees.
    let seq = cstf_tensor::mttkrp::mttkrp(&t, &refs, 2).unwrap();
    assert!(reference[2].max_abs_diff(&seq) < 1e-9);
}

#[test]
fn full_decomposition_after_mid_cluster_failure() {
    // Fail a node between two decompositions sharing a cluster: the second
    // run must be unaffected (fresh lineage) and the first run's artifacts
    // must not poison it.
    let t = tensor();
    let c = test_cluster(4);
    let first = cstf_core::CpAls::new(2)
        .strategy(cstf_core::Strategy::Qcoo)
        .max_iterations(2)
        .seed(9)
        .run(&c, &t)
        .unwrap();
    c.simulate_node_failure(0);
    let second = cstf_core::CpAls::new(2)
        .strategy(cstf_core::Strategy::Qcoo)
        .max_iterations(2)
        .seed(9)
        .run(&c, &t)
        .unwrap();
    assert!((first.stats.final_fit - second.stats.final_fit).abs() < 1e-12);
}
