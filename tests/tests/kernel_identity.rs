//! Kernel bit-identity suite: the sorted-runs task kernel — with and
//! without heavy-key splitting — must reproduce the record-at-a-time
//! combine bit for bit. The kernel changes *how* each task iterates
//! (sorted SoA runs, arena-backed accumulator rows, chunked heavy keys),
//! never the per-key operation sequence, so any bit drift is a bug. The
//! property runs over arbitrary tensors, every mode, random partition
//! counts and both map-side-combine settings; the chaos half demands the
//! same identity while ≥20 distinct fault schedules crash task attempts.

use cstf_core::factors::tensor_to_rdd;
use cstf_core::mttkrp::{mttkrp_coo, MttkrpOptions};
use cstf_core::qcoo::{QcooOptions, QcooState};
use cstf_dataflow::prelude::*;
use cstf_integration_tests::{random_factors, test_cluster};
use cstf_tensor::random::RandomTensor;
use cstf_tensor::{CooTensor, DenseMatrix};
use proptest::prelude::*;

fn assert_bit_identical(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    let (da, db) = (a.data(), b.data());
    for i in 0..da.len() {
        assert_eq!(
            da[i].to_bits(),
            db[i].to_bits(),
            "{what}: element {i} differs ({} vs {})",
            da[i],
            db[i]
        );
    }
}

/// Strategy generating a small random sparse tensor of order 2–4.
fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (2usize..=4)
        .prop_flat_map(|order| {
            let shape = prop::collection::vec(2u32..9, order..=order);
            (shape, 1usize..60, any::<u64>())
        })
        .prop_map(|(shape, nnz, seed)| {
            RandomTensor::new(shape)
                .nnz(nnz)
                .seed(seed)
                .values_in(-1.0, 1.0)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SortedRuns and SortedRunsSplit ≡ RecordAtATime, bitwise, for every
    /// mode of arbitrary tensors under arbitrary partitioning.
    #[test]
    fn sorted_kernels_match_record_at_a_time(
        t in arb_tensor(),
        rank in 1usize..4,
        fseed in any::<u64>(),
        partitions in 1usize..9,
        map_side_combine in any::<bool>(),
        frequency in 0.02f64..0.5,
    ) {
        let c = test_cluster(3);
        let rdd = tensor_to_rdd(&c, &t, 4).persist(StorageLevel::MemoryRaw);
        let factors = random_factors(t.shape(), rank, fseed);
        for mode in 0..t.order() {
            let run = |kernel: KernelStrategy| {
                let opts = MttkrpOptions {
                    partitions: Some(partitions),
                    map_side_combine,
                    kernel,
                    ..MttkrpOptions::default()
                };
                mttkrp_coo(&c, &rdd, &factors, t.shape(), mode, &opts).unwrap()
            };
            let reference = run(KernelStrategy::RecordAtATime);
            for kernel in [KernelStrategy::SortedRuns, KernelStrategy::split(frequency)] {
                let got = run(kernel);
                prop_assert_eq!(reference.rows(), got.rows());
                for i in 0..got.rows() {
                    for (x, y) in reference.row(i).iter().zip(got.row(i)) {
                        prop_assert_eq!(
                            x.to_bits(), y.to_bits(),
                            "mode {} row {} ({} vs {})", mode, i, x, y
                        );
                    }
                }
            }
        }
    }
}

/// A cluster whose injector crashes ~`probability` of first task attempts,
/// with enough attempt budget that every task still completes.
fn chaos_cluster(seed: u64, probability: f64) -> Cluster {
    Cluster::new(
        ClusterConfig::local(4)
            .nodes(4)
            .max_task_attempts(4)
            .faults(FaultConfig::crashes(seed, probability)),
    )
}

/// The sorted kernel under 20 distinct fault schedules matches a *quiet*
/// record-at-a-time run bitwise — retries and speculative re-execution
/// replay the kernel's sorted combine deterministically, and arena-hit
/// attribution never leaks across failed attempts into the results.
#[test]
fn sorted_kernel_bit_identical_across_twenty_fault_schedules() {
    let t = RandomTensor::new(vec![14, 12, 10])
        .nnz(320)
        .seed(91)
        .build();
    let factors = random_factors(t.shape(), 2, 92);

    let quiet_reference = {
        let c = test_cluster(4);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        let opts = MttkrpOptions {
            kernel: KernelStrategy::RecordAtATime,
            ..MttkrpOptions::default()
        };
        (0..t.order())
            .map(|m| mttkrp_coo(&c, &rdd, &factors, t.shape(), m, &opts).unwrap())
            .collect::<Vec<_>>()
    };

    for seed in 0..20u64 {
        let c = chaos_cluster(seed, 0.7);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        for kernel in [KernelStrategy::SortedRuns, KernelStrategy::split(0.05)] {
            let opts = MttkrpOptions {
                kernel,
                ..MttkrpOptions::default()
            };
            for (mode, expect) in quiet_reference.iter().enumerate() {
                let got = mttkrp_coo(&c, &rdd, &factors, t.shape(), mode, &opts).unwrap();
                assert_bit_identical(&got, expect, &format!("seed {seed} {kernel} mode {mode}"));
            }
        }
        let m = c.metrics().snapshot();
        assert!(
            m.total_task_failures() >= 1,
            "seed {seed}: schedule injected no faults — the run proved nothing"
        );
    }
}

/// QCOO's pooled rotation/reduction path (persisted queue state, two
/// shuffles per step) survives crash injection bit-identically against a
/// quiet record-at-a-time cycle.
#[test]
fn qcoo_sorted_kernel_bit_identical_under_faults() {
    let t = RandomTensor::new(vec![12, 11, 10])
        .nnz(260)
        .seed(93)
        .build();
    let factors = random_factors(t.shape(), 2, 94);

    let run = |c: &Cluster, kernel: KernelStrategy| -> Vec<DenseMatrix> {
        let rdd = tensor_to_rdd(c, &t, 8).persist(StorageLevel::MemoryRaw);
        let opts = QcooOptions {
            kernel,
            ..QcooOptions::default()
        };
        let mut q = QcooState::init_with(c, &rdd, &factors, t.shape(), 2, 8, opts).unwrap();
        let out = (0..t.order())
            .map(|_| q.step(&factors[q.next_join_mode()]).unwrap().1)
            .collect();
        q.release();
        out
    };

    let reference = run(&test_cluster(4), KernelStrategy::RecordAtATime);
    for seed in [5u64, 23, 58, 71, 104] {
        let c = chaos_cluster(seed, 0.6);
        let faulty = run(&c, KernelStrategy::split(0.05));
        for (mode, (got, expect)) in faulty.iter().zip(&reference).enumerate() {
            assert_bit_identical(got, expect, &format!("seed {seed} qcoo mode {mode}"));
        }
        assert!(c.metrics().snapshot().total_task_failures() >= 1);
    }
}
