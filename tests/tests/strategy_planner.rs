//! Planner-layer integration tests: every MTTKRP strategy driven through
//! the uniform [`plan`] API must (a) agree with the sequential reference
//! on arbitrary tensors under every partitioning level, (b) be
//! bit-identical to calling its underlying pipeline function directly —
//! the refactor moved construction, not math — and (c) for the new
//! DFacTo-SpMV strategy, be bit-identical under injected task faults.

use cstf_core::factors::tensor_to_rdd;
use cstf_core::mttkrp::{mttkrp_coo, mttkrp_coo_broadcast, MttkrpOptions};
use cstf_core::planner::{plan, PlanConfig};
use cstf_core::qcoo::{QcooOptions, QcooState};
use cstf_core::spmv::mttkrp_spmv;
use cstf_core::{CpAls, Partitioning, Strategy};
use cstf_dataflow::prelude::*;
use cstf_integration_tests::{random_factors, test_cluster};
use cstf_tensor::mttkrp::mttkrp as mttkrp_seq;
use cstf_tensor::random::RandomTensor;
use cstf_tensor::{CooTensor, DenseMatrix};
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Coo,
    Strategy::Qcoo,
    Strategy::CooBroadcast,
    Strategy::DfactoSpmv,
];

const ALL_PARTITIONINGS: [Partitioning; 3] = [
    Partitioning::None,
    Partitioning::CoPartitionedFactors,
    Partitioning::PrePartitionedTensor,
];

fn config(partitioning: Partitioning, rank: usize) -> PlanConfig {
    PlanConfig {
        rank,
        partitions: 4,
        partitioning,
        kernel: KernelStrategy::default(),
        cache_tensor: true,
        storage: StorageLevel::MemoryRaw,
    }
}

fn arb_tensor() -> impl proptest::strategy::Strategy<Value = CooTensor> {
    (2usize..=4)
        .prop_flat_map(|order| {
            let shape = prop::collection::vec(2u32..8, order..=order);
            (shape, 1usize..40, any::<u64>())
        })
        .prop_map(|(shape, nnz, seed)| {
            RandomTensor::new(shape)
                .nnz(nnz)
                .seed(seed)
                .values_in(-1.0, 1.0)
                .build()
        })
}

fn assert_bit_identical(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every (strategy × partitioning) pair planned through the uniform
    /// API agrees with the sequential MTTKRP on every mode.
    #[test]
    fn all_strategies_match_sequential(t in arb_tensor(), fseed in any::<u64>()) {
        let rank = 2;
        let factors = random_factors(t.shape(), rank, fseed);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        for strategy in ALL_STRATEGIES {
            for partitioning in ALL_PARTITIONINGS {
                let c = test_cluster(3);
                let mut p = plan(&c, &t, strategy, &config(partitioning, rank), &factors)
                    .unwrap();
                for mode in 0..t.order() {
                    let dist = p.mttkrp(&factors, mode).unwrap();
                    let seq = mttkrp_seq(&t, &refs, mode).unwrap();
                    prop_assert!(
                        dist.max_abs_diff(&seq) < 1e-9,
                        "{strategy}/{partitioning} mode {mode}"
                    );
                }
                p.release();
            }
        }
    }
}

/// The planner is a construction refactor: driving each ported strategy
/// through `plan()` must give bitwise the same rows as calling the
/// pre-planner pipeline entry points directly.
#[test]
fn planned_strategies_bit_identical_to_direct_pipelines() {
    let t = RandomTensor::new(vec![14, 11, 9]).nnz(280).seed(81).build();
    let rank = 2;
    let partitions = 4;
    let factors = random_factors(t.shape(), rank, 82);
    let opts = MttkrpOptions {
        partitions: Some(partitions),
        co_partition_factors: true,
        ..MttkrpOptions::default()
    };

    // Direct COO / broadcast / SpMV calls on a plain cached tensor RDD.
    let direct: Vec<(Strategy, Vec<DenseMatrix>)> = {
        let c = test_cluster(3);
        let rdd = tensor_to_rdd(&c, &t, partitions).persist(StorageLevel::MemoryRaw);
        let _ = rdd.count();
        let per_mode = |f: &dyn Fn(usize) -> DenseMatrix| (0..t.order()).map(f).collect();
        vec![
            (
                Strategy::Coo,
                per_mode(&|m| mttkrp_coo(&c, &rdd, &factors, t.shape(), m, &opts).unwrap()),
            ),
            (
                Strategy::CooBroadcast,
                per_mode(&|m| {
                    mttkrp_coo_broadcast(&c, &rdd, &factors, t.shape(), m, &opts).unwrap()
                }),
            ),
            (
                Strategy::DfactoSpmv,
                per_mode(&|m| mttkrp_spmv(&c, &rdd, &factors, t.shape(), m, &opts).unwrap()),
            ),
        ]
    };
    // Direct QCOO state over one full mode cycle.
    let direct_qcoo: Vec<DenseMatrix> = {
        let c = test_cluster(3);
        let rdd = tensor_to_rdd(&c, &t, partitions).persist(StorageLevel::MemoryRaw);
        let mut q = QcooState::init_with(
            &c,
            &rdd,
            &factors,
            t.shape(),
            rank,
            partitions,
            QcooOptions::default(),
        )
        .unwrap();
        (0..t.order())
            .map(|mode| {
                let (out_mode, m) = q.step(&factors[q.next_join_mode()]).unwrap();
                assert_eq!(out_mode, mode);
                m
            })
            .collect()
    };

    for (strategy, expect) in direct
        .into_iter()
        .chain(std::iter::once((Strategy::Qcoo, direct_qcoo)))
    {
        let c = test_cluster(3);
        let mut p = plan(
            &c,
            &t,
            strategy,
            &config(Partitioning::CoPartitionedFactors, rank),
            &factors,
        )
        .unwrap();
        for (mode, want) in expect.iter().enumerate() {
            let got = p.mttkrp(&factors, mode).unwrap();
            assert_bit_identical(&got, want, &format!("{strategy} mode {mode}"));
        }
        p.release();
    }
}

/// DFacTo-SpMV MTTKRP is bit-identical under 20 distinct fault schedules,
/// each of which actually kills at least one task attempt — retried
/// attempts recompute their partition exactly, and the canonicalized
/// fiber order makes every downstream reduce order-independent of *which*
/// attempt won.
#[test]
fn spmv_mttkrp_bit_identical_across_twenty_fault_schedules() {
    let t = RandomTensor::new(vec![16, 13, 11])
        .nnz(350)
        .seed(91)
        .build();
    let factors = random_factors(t.shape(), 2, 92);

    let clean: Vec<DenseMatrix> = {
        let c = test_cluster(4);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        (0..t.order())
            .map(|m| mttkrp_spmv(&c, &rdd, &factors, t.shape(), m, &MttkrpOptions::default()))
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    };

    for seed in 0..20u64 {
        let c = Cluster::new(
            ClusterConfig::local(4)
                .nodes(4)
                .max_task_attempts(4)
                .faults(FaultConfig::crashes(seed, 0.7)),
        );
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        for (mode, expect) in clean.iter().enumerate() {
            let got = mttkrp_spmv(
                &c,
                &rdd,
                &factors,
                t.shape(),
                mode,
                &MttkrpOptions::default(),
            )
            .unwrap();
            assert_bit_identical(&got, expect, &format!("seed {seed} mode {mode}"));
        }
        let m = c.metrics().snapshot();
        assert!(
            m.total_task_failures() >= 1,
            "seed {seed}: schedule injected no faults"
        );
        assert_eq!(
            m.total_task_retries(),
            m.total_task_failures(),
            "seed {seed}: every failure retried exactly once"
        );
    }
}

/// Full CP-ALS with the SpMV strategy survives chaos bit-identically too:
/// the planner path composes the per-MTTKRP guarantee across iterations.
#[test]
fn spmv_cp_als_bit_identical_under_chaos() {
    let t = RandomTensor::new(vec![12, 10, 8]).nnz(250).seed(93).build();
    let run = |c: &Cluster| {
        CpAls::new(2)
            .strategy(Strategy::DfactoSpmv)
            .max_iterations(3)
            .skip_fit()
            .seed(7)
            .run(c, &t)
            .unwrap()
            .kruskal
    };
    let clean = run(&test_cluster(4));
    for seed in [1u64, 5, 13] {
        let c = Cluster::new(
            ClusterConfig::local(4)
                .nodes(4)
                .max_task_attempts(4)
                .faults(FaultConfig::crashes(seed, 0.4)),
        );
        let chaotic = run(&c);
        assert!(c.metrics().snapshot().total_task_failures() >= 1);
        for (mode, (a, b)) in clean.factors.iter().zip(chaotic.factors.iter()).enumerate() {
            assert_bit_identical(a, b, &format!("seed {seed} factor {mode}"));
        }
    }
}
