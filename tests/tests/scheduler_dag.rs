//! DAG-scheduler integration tests against the real tensor kernels: the
//! independent factor-side shuffle-map stages of one MTTKRP must share a
//! scheduling wave, CP-ALS must be bit-identical between the concurrent
//! and forced-sequential schedulers (quiet and under seeded chaos), and
//! shuffle counters must be concurrency-invariant.

use cstf_core::factors::tensor_to_rdd;
use cstf_core::mttkrp::{mttkrp_coo, MttkrpOptions};
use cstf_core::qcoo::QcooState;
use cstf_core::{CpAls, Partitioning, Strategy};
use cstf_dataflow::prelude::*;
use cstf_dataflow::StageKind;
use cstf_integration_tests::random_factors;
use cstf_tensor::random::{sparse_low_rank_tensor, RandomTensor};
use cstf_tensor::{CooTensor, DenseMatrix};

fn tensor() -> CooTensor {
    RandomTensor::new(vec![16, 13, 11])
        .nnz(350)
        .seed(81)
        .build()
}

fn quiet(nodes: usize) -> ClusterConfig {
    ClusterConfig::local(4).nodes(nodes)
}

fn assert_bit_identical(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// One legacy (non-co-partitioned) order-3 COO MTTKRP: the tensor-key
/// shuffle and the two factor-side shuffles have no dependency path
/// between them, so the DAG scheduler must put all three in wave 0 —
/// this is the concurrency the paper's Spark baseline gets for free from
/// the `DAGScheduler`.
#[test]
fn legacy_mttkrp_factor_stages_share_wave_zero() {
    let t = tensor();
    let c = Cluster::new(quiet(4));
    let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
    let _ = rdd.count();
    let factors = random_factors(t.shape(), 2, 82);
    let opts = MttkrpOptions {
        co_partition_factors: false,
        ..MttkrpOptions::default()
    };
    c.metrics().reset();
    let _ = mttkrp_coo(&c, &rdd, &factors, t.shape(), 0, &opts).unwrap();
    let m = c.metrics().snapshot();
    let jobs = m.dag_jobs();
    assert_eq!(jobs.len(), 1, "one action, one job");
    let job = jobs[0];

    let waves: Vec<(usize, StageKind)> = m
        .stages_in_job(job)
        .map(|s| (s.dag.as_ref().unwrap().wave, s.kind))
        .collect();
    let wave0_maps = waves
        .iter()
        .filter(|(w, k)| *w == 0 && *k == StageKind::ShuffleMap)
        .count();
    assert!(
        wave0_maps >= 2,
        "independent factor-side stages must share wave 0; got {waves:?}"
    );
    // Full structure: tensor-key + 2 factor shuffles (wave 0), the stage-2
    // re-key (wave 1), the final reduce (wave 2), the result (wave 3).
    let mut sorted: Vec<usize> = waves.iter().map(|(w, _)| *w).collect();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 0, 0, 1, 2, 3], "stages: {waves:?}");

    // The overlap is worth real modeled time: the critical path through
    // this job is strictly shorter than running its stages back-to-back.
    let tm = TimeModel::spark();
    let critical = tm.job_critical_path(&m, job);
    let serialized = tm.job_serialized(&m, job);
    assert!(
        critical < serialized - 1e-9,
        "critical-path {critical} must beat serialized {serialized}"
    );
}

/// With co-partitioned factors (the default) the MTTKRP collapses to a
/// chain of tensor-sized stages — nothing to overlap, so the critical
/// path equals the serial sum and every wave holds one stage.
#[test]
fn co_partitioned_mttkrp_is_a_chain() {
    let t = tensor();
    let c = Cluster::new(quiet(4));
    let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
    let _ = rdd.count();
    let factors = random_factors(t.shape(), 2, 83);
    c.metrics().reset();
    let _ = mttkrp_coo(&c, &rdd, &factors, t.shape(), 0, &MttkrpOptions::default()).unwrap();
    let m = c.metrics().snapshot();
    let job = m.dag_jobs()[0];
    let mut waves: Vec<usize> = m
        .stages_in_job(job)
        .map(|s| s.dag.as_ref().unwrap().wave)
        .collect();
    waves.sort_unstable();
    assert_eq!(waves, vec![0, 1, 2, 3], "chain: one stage per wave");
    let tm = TimeModel::spark();
    assert!((tm.job_critical_path(&m, job) - tm.job_serialized(&m, job)).abs() < 1e-12);
}

/// Shuffle accounting must not notice the scheduler: quiet concurrent and
/// quiet sequential runs of the same legacy MTTKRP agree on every counter.
#[test]
fn counters_are_concurrency_invariant() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 84);
    let opts = MttkrpOptions {
        co_partition_factors: false,
        ..MttkrpOptions::default()
    };
    let run = |config: ClusterConfig| {
        let c = Cluster::new(config);
        let rdd = tensor_to_rdd(&c, &t, 8).persist(StorageLevel::MemoryRaw);
        let out = mttkrp_coo(&c, &rdd, &factors, t.shape(), 0, &opts).unwrap();
        (out, c.metrics().snapshot())
    };
    let (seq_out, seq) = run(quiet(4).sequential_stages());
    let (conc_out, conc) = run(quiet(4));
    assert_bit_identical(&conc_out, &seq_out, "scheduler mode");
    assert_eq!(seq.shuffle_count(), conc.shuffle_count());
    assert_eq!(seq.total_shuffle_bytes(), conc.total_shuffle_bytes());
    assert_eq!(seq.total_remote_bytes(), conc.total_remote_bytes());
    assert_eq!(seq.total_local_bytes(), conc.total_local_bytes());
    // Same stages with the same per-stage traffic. Each mode's log order
    // is deterministic, but the two orders differ (post-order vs
    // wave-major), so compare as sorted sets.
    let traffic = |m: &JobMetrics| {
        let mut v: Vec<(String, u64, u64)> = m
            .stages()
            .map(|s| {
                (
                    s.name.clone(),
                    s.shuffle_write_bytes,
                    s.shuffle_write_records,
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(traffic(&seq), traffic(&conc));
}

/// Acceptance criterion: CP-ALS factors are bit-identical between the
/// sequential and concurrent schedulers, quiet and under 20 distinct
/// seeded chaos schedules. `Partitioning::None` keeps the factor-side
/// shuffles alive, so the concurrent scheduler genuinely overlaps stages
/// here — and still must change nothing.
#[test]
fn cp_als_bit_identical_across_schedulers_and_chaos_seeds() {
    let (t, _) = sparse_low_rank_tensor(&[24, 20, 16], 2, 8, 85);
    let run = |config: ClusterConfig| {
        let c = Cluster::new(config);
        let r = CpAls::new(2)
            .strategy(Strategy::Coo)
            .partitioning(Partitioning::None)
            .max_iterations(2)
            .seed(9)
            .run(&c, &t)
            .unwrap();
        (r, c)
    };

    let (reference, _) = run(quiet(4).sequential_stages());
    let (concurrent, _) = run(quiet(4));
    assert_eq!(
        reference
            .kruskal
            .weights
            .iter()
            .map(|w| w.to_bits())
            .collect::<Vec<_>>(),
        concurrent
            .kruskal
            .weights
            .iter()
            .map(|w| w.to_bits())
            .collect::<Vec<_>>(),
        "weights drifted between schedulers"
    );
    for (mode, (a, b)) in reference
        .kruskal
        .factors
        .iter()
        .zip(&concurrent.kruskal.factors)
        .enumerate()
    {
        assert_bit_identical(b, a, &format!("quiet factor {mode}"));
    }

    for seed in 0..20u64 {
        let config = quiet(4)
            .max_task_attempts(4)
            .faults(FaultConfig::crashes(seed, 0.5).with_late_crashes(0.2));
        let (chaotic, c) = run(config);
        for (mode, (a, b)) in reference
            .kruskal
            .factors
            .iter()
            .zip(&chaotic.kruskal.factors)
            .enumerate()
        {
            assert_bit_identical(b, a, &format!("seed {seed} factor {mode}"));
        }
        let m = c.metrics().snapshot();
        assert!(
            m.total_task_failures() >= 1,
            "seed {seed}: schedule injected nothing"
        );
        assert_eq!(
            m.total_task_retries(),
            m.total_task_failures(),
            "seed {seed}: retry counters must stay failure-exact under waves"
        );
    }
}

/// QCOO's step chain is sequential by construction; the DAG scheduler must
/// leave it bit-identical under chaos too.
#[test]
fn qcoo_steps_bit_identical_across_schedulers_and_chaos() {
    let t = tensor();
    let factors = random_factors(t.shape(), 2, 86);
    let run = |c: &Cluster| -> Vec<DenseMatrix> {
        let rdd = tensor_to_rdd(c, &t, 8).persist(StorageLevel::MemoryRaw);
        let mut q = QcooState::init(c, &rdd, &factors, t.shape(), 2, 8).unwrap();
        (0..t.order())
            .map(|_| q.step(&factors[q.next_join_mode()]).unwrap().1)
            .collect()
    };
    let reference = run(&Cluster::new(quiet(4).sequential_stages()));
    let concurrent = run(&Cluster::new(quiet(4)));
    for (mode, (a, b)) in reference.iter().zip(&concurrent).enumerate() {
        assert_bit_identical(b, a, &format!("quiet qcoo mode {mode}"));
    }
    for seed in [2u64, 19, 57, 101] {
        let c = Cluster::new(
            quiet(4)
                .max_task_attempts(4)
                .faults(FaultConfig::crashes(seed, 0.6)),
        );
        let chaotic = run(&c);
        for (mode, (a, b)) in reference.iter().zip(&chaotic).enumerate() {
            assert_bit_identical(b, a, &format!("seed {seed} qcoo mode {mode}"));
        }
        assert!(c.metrics().snapshot().total_task_failures() >= 1);
    }
}
